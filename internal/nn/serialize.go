package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the on-wire form of a parameter set: names, shapes, and flat
// values, in declaration order.
type snapshot struct {
	Names  []string
	Shapes [][2]int
	Values [][]float64
}

// SaveParams serializes the values of params to w using encoding/gob.
// Gradients and optimizer state are not persisted: a loaded model is ready
// for inference, and training can resume with a fresh optimizer.
func SaveParams(w io.Writer, params []*Param) error {
	snap := snapshot{}
	for _, p := range params {
		snap.Names = append(snap.Names, p.Name)
		snap.Shapes = append(snap.Shapes, [2]int{p.W.Rows, p.W.Cols})
		snap.Values = append(snap.Values, append([]float64(nil), p.W.Data...))
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadParams restores parameter values previously written by SaveParams
// into params. The parameter list must match in order, name and shape;
// any mismatch is an error and leaves params partially updated only after
// full validation (validation happens before any write).
func LoadParams(r io.Reader, params []*Param) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decoding parameter snapshot: %w", err)
	}
	if len(snap.Names) != len(params) {
		return fmt.Errorf("nn: snapshot has %d params, model has %d", len(snap.Names), len(params))
	}
	for i, p := range params {
		if snap.Names[i] != p.Name {
			return fmt.Errorf("nn: param %d name %q, snapshot has %q", i, p.Name, snap.Names[i])
		}
		if snap.Shapes[i] != [2]int{p.W.Rows, p.W.Cols} {
			return fmt.Errorf("nn: param %q shape %d×%d, snapshot has %d×%d",
				p.Name, p.W.Rows, p.W.Cols, snap.Shapes[i][0], snap.Shapes[i][1])
		}
		if len(snap.Values[i]) != len(p.W.Data) {
			return fmt.Errorf("nn: param %q has %d values in snapshot, want %d",
				p.Name, len(snap.Values[i]), len(p.W.Data))
		}
	}
	for i, p := range params {
		copy(p.W.Data, snap.Values[i])
	}
	return nil
}
