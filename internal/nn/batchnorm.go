package nn

import (
	"fmt"
	"math"

	"noble/internal/mat"
)

// BatchNorm normalizes each feature over the batch dimension [21], with a
// learnable per-feature scale (gamma) and shift (beta). The paper uses batch
// normalization in both the Wi-Fi and IMU models. At inference time the
// layer uses exponentially averaged running statistics collected during
// training.
type BatchNorm struct {
	Features int
	Eps      float64
	Momentum float64 // running-stat update rate, typically 0.1

	Gamma, Beta *Param

	RunningMean []float64
	RunningVar  []float64

	// Backward caches.
	xc     *mat.Dense // centered input
	std    []float64  // per-feature stddev for the batch
	normed *mat.Dense // normalized input
}

// NewBatchNorm creates a batch-norm layer over the given feature count with
// gamma=1, beta=0, running mean 0 and running variance 1.
func NewBatchNorm(name string, features int) *BatchNorm {
	bn := &BatchNorm{
		Features:    features,
		Eps:         1e-5,
		Momentum:    0.1,
		Gamma:       NewParam(name+".gamma", 1, features),
		Beta:        NewParam(name+".beta", 1, features),
		RunningMean: make([]float64, features),
		RunningVar:  make([]float64, features),
	}
	bn.Gamma.W.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes x feature-wise. In training mode it uses batch
// statistics and updates the running averages; in inference mode it uses
// the running statistics.
func (bn *BatchNorm) Forward(x *mat.Dense, train bool) *mat.Dense {
	if x.Cols != bn.Features {
		panic(fmt.Sprintf("nn: BatchNorm over %d features got %d cols", bn.Features, x.Cols))
	}
	out := mat.New(x.Rows, x.Cols)
	if !train {
		for i := 0; i < x.Rows; i++ {
			row, orow := x.Row(i), out.Row(i)
			for j := range row {
				inv := 1 / math.Sqrt(bn.RunningVar[j]+bn.Eps)
				orow[j] = bn.Gamma.W.Data[j]*(row[j]-bn.RunningMean[j])*inv + bn.Beta.W.Data[j]
			}
		}
		return out
	}
	n := float64(x.Rows)
	mean := x.SumRows()
	for j := range mean {
		mean[j] /= n
	}
	bn.xc = mat.New(x.Rows, x.Cols)
	variance := make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row, crow := x.Row(i), bn.xc.Row(i)
		for j := range row {
			d := row[j] - mean[j]
			crow[j] = d
			variance[j] += d * d
		}
	}
	bn.std = make([]float64, x.Cols)
	for j := range variance {
		variance[j] /= n
		bn.std[j] = math.Sqrt(variance[j] + bn.Eps)
	}
	bn.normed = mat.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		crow, nrow, orow := bn.xc.Row(i), bn.normed.Row(i), out.Row(i)
		for j := range crow {
			v := crow[j] / bn.std[j]
			nrow[j] = v
			orow[j] = bn.Gamma.W.Data[j]*v + bn.Beta.W.Data[j]
		}
	}
	for j := range mean {
		bn.RunningMean[j] = (1-bn.Momentum)*bn.RunningMean[j] + bn.Momentum*mean[j]
		bn.RunningVar[j] = (1-bn.Momentum)*bn.RunningVar[j] + bn.Momentum*variance[j]
	}
	return out
}

// Backward implements the standard batch-norm gradient.
func (bn *BatchNorm) Backward(dout *mat.Dense) *mat.Dense {
	if bn.normed == nil {
		panic("nn: BatchNorm.Backward before Forward(train=true)")
	}
	n := float64(dout.Rows)
	// Parameter gradients.
	for i := 0; i < dout.Rows; i++ {
		drow, nrow := dout.Row(i), bn.normed.Row(i)
		for j := range drow {
			bn.Gamma.G.Data[j] += drow[j] * nrow[j]
			bn.Beta.G.Data[j] += drow[j]
		}
	}
	// Input gradient:
	// dx = (gamma/std) * (dout - mean(dout) - normed * mean(dout*normed))
	sumD := make([]float64, dout.Cols)
	sumDN := make([]float64, dout.Cols)
	for i := 0; i < dout.Rows; i++ {
		drow, nrow := dout.Row(i), bn.normed.Row(i)
		for j := range drow {
			sumD[j] += drow[j]
			sumDN[j] += drow[j] * nrow[j]
		}
	}
	dx := mat.New(dout.Rows, dout.Cols)
	for i := 0; i < dout.Rows; i++ {
		drow, nrow, xrow := dout.Row(i), bn.normed.Row(i), dx.Row(i)
		for j := range drow {
			g := bn.Gamma.W.Data[j]
			xrow[j] = g / bn.std[j] * (drow[j] - sumD[j]/n - nrow[j]*sumDN[j]/n)
		}
	}
	return dx
}

// Params returns gamma and beta.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// StatParams exposes the running statistics as pseudo-parameters that
// share the layer's backing storage, so serialization (SaveParams /
// LoadParams) can persist and restore inference-time state. They are not
// returned by Params and never see an optimizer.
func (bn *BatchNorm) StatParams() []*Param {
	return []*Param{
		{Name: bn.Gamma.Name + ".runmean", W: mat.FromSlice(1, bn.Features, bn.RunningMean)},
		{Name: bn.Gamma.Name + ".runvar", W: mat.FromSlice(1, bn.Features, bn.RunningVar)},
	}
}
