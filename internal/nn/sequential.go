package nn

import (
	"fmt"
	"math/rand"

	"noble/internal/mat"
)

// Sequential chains layers, feeding each output into the next layer's
// input. It itself satisfies Layer, so sequentials compose.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a container over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Add appends a layer.
func (s *Sequential) Add(l Layer) { s.Layers = append(s.Layers, l) }

// Forward runs the layers in order.
func (s *Sequential) Forward(x *mat.Dense, train bool) *mat.Dense {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the layers in reverse order.
func (s *Sequential) Backward(dout *mat.Dense) *mat.Dense {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params concatenates the parameters of every layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// StatParams concatenates the non-learnable serializable state of every
// layer that carries any (batch-norm running statistics).
func (s *Sequential) StatParams() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		if sh, ok := l.(StatHolder); ok {
			out = append(out, sh.StatParams()...)
		}
	}
	return out
}

// FLOPs sums the FLOP estimates of layers that report one (Dense,
// BlockDense); other layers contribute a per-element pass counted by the
// energy model separately.
func (s *Sequential) FLOPs() int64 {
	var total int64
	for _, l := range s.Layers {
		if f, ok := l.(interface{ FLOPs() int64 }); ok {
			total += f.FLOPs()
		}
	}
	return total
}

// NewMLP builds the paper's standard trunk: repeated [Dense → BatchNorm →
// activation] blocks with the given hidden sizes (§IV-A uses two hidden
// layers of 128 with tanh, Xavier initialization and batch normalization).
// The activation is tanh when useTanh is true, ReLU otherwise.
func NewMLP(name string, in int, hidden []int, useTanh bool, rng *rand.Rand) *Sequential {
	s := NewSequential()
	prev := in
	for i, h := range hidden {
		layerName := fmt.Sprintf("%s.fc%d", name, i)
		scheme := InitXavier
		if !useTanh {
			scheme = InitHe
		}
		s.Add(NewDense(layerName, prev, h, scheme, rng))
		s.Add(NewBatchNorm(fmt.Sprintf("%s.bn%d", name, i), h))
		if useTanh {
			s.Add(NewTanh())
		} else {
			s.Add(NewReLU())
		}
		prev = h
	}
	return s
}

// Head couples an output projection with its loss and a mixing weight.
// NObLe's Wi-Fi model uses four heads: fine neighborhood class, coarse
// class, building, and floor (§IV-A, Fig. 3).
type Head struct {
	Name   string
	Layer  Layer
	Loss   Loss
	Weight float64

	lastOut *mat.Dense
}

// MultiHead is a shared trunk feeding several heads, the network-level
// expression of the paper's multi-label formulation: the trunk's
// penultimate activation is the learned manifold embedding, and each head
// is a linear probe whose loss shapes that embedding.
type MultiHead struct {
	Trunk *Sequential
	Heads []*Head

	lastEmb *mat.Dense
}

// NewMultiHead builds a multi-head model.
func NewMultiHead(trunk *Sequential, heads ...*Head) *MultiHead {
	return &MultiHead{Trunk: trunk, Heads: heads}
}

// Forward computes the trunk embedding and every head's raw output
// (logits). The embedding is returned alongside the per-head outputs.
func (m *MultiHead) Forward(x *mat.Dense, train bool) (emb *mat.Dense, outs []*mat.Dense) {
	emb = m.Trunk.Forward(x, train)
	if train {
		m.lastEmb = emb
	}
	outs = make([]*mat.Dense, len(m.Heads))
	for i, h := range m.Heads {
		outs[i] = h.Layer.Forward(emb, train)
		if train {
			h.lastOut = outs[i]
		}
	}
	return emb, outs
}

// Step performs a full forward/backward pass for one batch: it computes
// the weighted sum of head losses against the given targets (targets[i]
// pairs with Heads[i]; a nil target skips that head) and accumulates all
// gradients. It returns the total weighted loss.
func (m *MultiHead) Step(x *mat.Dense, targets []*mat.Dense) float64 {
	_, outs := m.Forward(x, true)
	total := 0.0
	dEmb := mat.New(m.lastEmb.Rows, m.lastEmb.Cols)
	for i, h := range m.Heads {
		if targets[i] == nil {
			continue
		}
		total += h.Weight * h.Loss.Forward(outs[i], targets[i])
		dOut := h.Loss.Backward()
		dOut.Scale(h.Weight)
		dEmb.AddInPlace(h.Layer.Backward(dOut))
	}
	m.Trunk.Backward(dEmb)
	return total
}

// Params concatenates trunk and head parameters.
func (m *MultiHead) Params() []*Param {
	out := m.Trunk.Params()
	for _, h := range m.Heads {
		out = append(out, h.Layer.Params()...)
	}
	return out
}

// StatParams concatenates trunk and head serializable state.
func (m *MultiHead) StatParams() []*Param {
	out := m.Trunk.StatParams()
	for _, h := range m.Heads {
		if sh, ok := h.Layer.(StatHolder); ok {
			out = append(out, sh.StatParams()...)
		}
	}
	return out
}

// FLOPs estimates the MAC count of a single inference (trunk plus heads).
func (m *MultiHead) FLOPs() int64 {
	total := m.Trunk.FLOPs()
	for _, h := range m.Heads {
		if f, ok := h.Layer.(interface{ FLOPs() int64 }); ok {
			total += f.FLOPs()
		}
	}
	return total
}
