package nn

import (
	"math"
	"testing"

	"noble/internal/mat"
)

// numericGrad approximates df/dv by central differences where v is a single
// element of a tensor reachable through get/set.
func numericGrad(f func() float64, data []float64, i int) float64 {
	const eps = 1e-5
	orig := data[i]
	data[i] = orig + eps
	plus := f()
	data[i] = orig - eps
	minus := f()
	data[i] = orig
	return (plus - minus) / (2 * eps)
}

// checkGrads verifies analytic parameter and input gradients of a
// layer+loss composition against central differences.
func checkGrads(t *testing.T, layer Layer, loss Loss, x, target *mat.Dense, tol float64) {
	t.Helper()
	forward := func() float64 {
		out := layer.Forward(x, true)
		return loss.Forward(out, target)
	}
	// Analytic pass.
	params := layer.Params()
	ZeroGrads(params)
	out := layer.Forward(x, true)
	loss.Forward(out, target)
	dx := layer.Backward(loss.Backward())

	for _, p := range params {
		for i := range p.W.Data {
			want := numericGrad(forward, p.W.Data, i)
			got := p.G.Data[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: analytic %g numeric %g", p.Name, i, got, want)
			}
		}
	}
	for i := range x.Data {
		want := numericGrad(forward, x.Data, i)
		got := dx.Data[i]
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("input[%d]: analytic %g numeric %g", i, got, want)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := mat.NewRand(100)
	layer := NewDense("d", 4, 3, InitXavier, rng)
	x := mat.New(5, 4)
	mat.FillNormal(x, rng, 0, 1)
	target := mat.New(5, 3)
	mat.FillNormal(target, rng, 0, 1)
	checkGrads(t, layer, NewMSE(), x, target, 1e-6)
}

func TestDenseWithSoftmaxCEGradients(t *testing.T) {
	rng := mat.NewRand(101)
	layer := NewDense("d", 4, 3, InitXavier, rng)
	x := mat.New(6, 4)
	mat.FillNormal(x, rng, 0, 1)
	target := OneHotBatch([]int{0, 1, 2, 0, 1, 2}, 3)
	checkGrads(t, layer, NewSoftmaxCE(), x, target, 1e-6)
}

func TestDenseWithBCEGradients(t *testing.T) {
	rng := mat.NewRand(102)
	layer := NewDense("d", 5, 4, InitXavier, rng)
	x := mat.New(4, 5)
	mat.FillNormal(x, rng, 0, 1)
	target := mat.New(4, 4)
	// Multi-label target: several positives per row.
	for i := 0; i < 4; i++ {
		target.Set(i, i%4, 1)
		target.Set(i, (i+1)%4, 0.5)
	}
	checkGrads(t, layer, NewBCEWithLogits(), x, target, 1e-6)
}

func TestTanhNetworkGradients(t *testing.T) {
	rng := mat.NewRand(103)
	net := NewSequential(
		NewDense("fc1", 3, 6, InitXavier, rng),
		NewTanh(),
		NewDense("fc2", 6, 2, InitXavier, rng),
	)
	x := mat.New(4, 3)
	mat.FillNormal(x, rng, 0, 1)
	target := mat.New(4, 2)
	mat.FillNormal(target, rng, 0, 1)
	checkGrads(t, net, NewMSE(), x, target, 1e-5)
}

func TestReLUNetworkGradients(t *testing.T) {
	rng := mat.NewRand(104)
	net := NewSequential(
		NewDense("fc1", 3, 8, InitHe, rng),
		NewReLU(),
		NewDense("fc2", 8, 2, InitHe, rng),
	)
	x := mat.New(4, 3)
	// Keep activations away from the ReLU kink for stable differences.
	mat.FillNormal(x, rng, 0.5, 1)
	target := mat.New(4, 2)
	mat.FillNormal(target, rng, 0, 1)
	checkGrads(t, net, NewMSE(), x, target, 1e-4)
}

func TestSigmoidGradients(t *testing.T) {
	rng := mat.NewRand(105)
	net := NewSequential(
		NewDense("fc1", 3, 4, InitXavier, rng),
		NewSigmoid(),
	)
	x := mat.New(3, 3)
	mat.FillNormal(x, rng, 0, 1)
	target := mat.New(3, 4)
	mat.FillNormal(target, rng, 0.5, 0.2)
	checkGrads(t, net, NewMSE(), x, target, 1e-6)
}

func TestBatchNormGradients(t *testing.T) {
	rng := mat.NewRand(106)
	net := NewSequential(
		NewDense("fc", 3, 4, InitXavier, rng),
		NewBatchNorm("bn", 4),
		NewTanh(),
	)
	x := mat.New(6, 3)
	mat.FillNormal(x, rng, 0, 1)
	target := mat.New(6, 4)
	mat.FillNormal(target, rng, 0, 1)
	checkGrads(t, net, NewMSE(), x, target, 1e-4)
}

func TestBlockDenseGradients(t *testing.T) {
	rng := mat.NewRand(107)
	layer := NewBlockDense("proj", 3, 4, 2, InitXavier, rng)
	x := mat.New(5, 12)
	mat.FillNormal(x, rng, 0, 1)
	target := mat.New(5, 6)
	mat.FillNormal(target, rng, 0, 1)
	checkGrads(t, layer, NewMSE(), x, target, 1e-6)
}

func TestFullPaperTrunkGradients(t *testing.T) {
	// The actual architecture from §IV-A: two hidden tanh+BN layers.
	rng := mat.NewRand(108)
	net := NewMLP("trunk", 5, []int{8, 8}, true, rng)
	x := mat.New(6, 5)
	mat.FillNormal(x, rng, 0, 1)
	target := mat.New(6, 8)
	mat.FillNormal(target, rng, 0, 1)
	checkGrads(t, net, NewMSE(), x, target, 1e-4)
}
