package nn

import (
	"math"
	"testing"
	"testing/quick"

	"noble/internal/mat"
)

func TestMSEKnown(t *testing.T) {
	pred := mat.FromRows([][]float64{{1, 2}})
	target := mat.FromRows([][]float64{{0, 0}})
	l := NewMSE()
	got := l.Forward(pred, target)
	if math.Abs(got-2.5) > 1e-12 { // (1+4)/2
		t.Fatalf("MSE=%v want 2.5", got)
	}
	g := l.Backward()
	if g.At(0, 0) != 1 || g.At(0, 1) != 2 {
		t.Fatalf("MSE grad=%v", g)
	}
}

func TestMSEZeroAtPerfect(t *testing.T) {
	pred := mat.FromRows([][]float64{{3, 4}, {5, 6}})
	if l := NewMSE().Forward(pred, pred.Clone()); l != 0 {
		t.Fatalf("perfect MSE=%v", l)
	}
}

func TestSoftmaxRowsSumToOneProperty(t *testing.T) {
	rng := mat.NewRand(20)
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%5)+1, int(c8%5)+2
		logits := mat.New(r, c)
		mat.FillNormal(logits, rng, 0, 5)
		p := Softmax(logits)
		for i := 0; i < r; i++ {
			var sum float64
			for _, v := range p.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 2, 3}})
	b := mat.FromRows([][]float64{{1001, 1002, 1003}})
	pa, pb := Softmax(a), Softmax(b)
	if !mat.Equal(pa, pb, 1e-12) {
		t.Fatal("softmax must be shift-invariant")
	}
}

func TestSoftmaxCEPerfectPrediction(t *testing.T) {
	logits := mat.FromRows([][]float64{{100, 0, 0}})
	target := OneHotBatch([]int{0}, 3)
	l := NewSoftmaxCE().Forward(logits, target)
	if l > 1e-6 {
		t.Fatalf("CE of confident correct prediction = %v", l)
	}
}

func TestSoftmaxCEUniformBaseline(t *testing.T) {
	logits := mat.New(1, 4) // all-zero → uniform
	target := OneHotBatch([]int{2}, 4)
	l := NewSoftmaxCE().Forward(logits, target)
	if math.Abs(l-math.Log(4)) > 1e-9 {
		t.Fatalf("uniform CE=%v want ln4=%v", l, math.Log(4))
	}
}

func TestSoftmaxCEGradientSumsToZero(t *testing.T) {
	// d/dlogits of CE sums to zero per row (softmax sums to 1, target sums to 1).
	rng := mat.NewRand(21)
	logits := mat.New(3, 5)
	mat.FillNormal(logits, rng, 0, 2)
	target := OneHotBatch([]int{1, 4, 0}, 5)
	l := NewSoftmaxCE()
	l.Forward(logits, target)
	g := l.Backward()
	for i := 0; i < 3; i++ {
		var sum float64
		for _, v := range g.Row(i) {
			sum += v
		}
		if math.Abs(sum) > 1e-10 {
			t.Fatalf("row %d grad sum %v", i, sum)
		}
	}
}

func TestBCEWithLogitsKnown(t *testing.T) {
	pred := mat.FromRows([][]float64{{0}})
	target := mat.FromRows([][]float64{{1}})
	l := NewBCEWithLogits().Forward(pred, target)
	if math.Abs(l-math.Log(2)) > 1e-12 {
		t.Fatalf("BCE(0,1)=%v want ln2", l)
	}
}

func TestBCEWithLogitsExtremeStability(t *testing.T) {
	pred := mat.FromRows([][]float64{{1000, -1000}})
	target := mat.FromRows([][]float64{{1, 0}})
	l := NewBCEWithLogits().Forward(pred, target)
	if math.IsNaN(l) || math.IsInf(l, 0) || l > 1e-6 {
		t.Fatalf("BCE extreme=%v", l)
	}
	// Wrong labels at extreme logits: loss ≈ 2000/1, still finite.
	badTarget := mat.FromRows([][]float64{{0, 1}})
	l = NewBCEWithLogits().Forward(pred, badTarget)
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatal("BCE must stay finite at extreme wrong logits")
	}
}

func TestBCESupportsMultiLabelTargets(t *testing.T) {
	// A row may have several positive labels — the core of the paper's
	// multi-label adjacency trick.
	pred := mat.FromRows([][]float64{{10, 10, -10}})
	target := mat.FromRows([][]float64{{1, 1, 0}})
	l := NewBCEWithLogits().Forward(pred, target)
	if l > 1e-3 {
		t.Fatalf("multi-label BCE=%v", l)
	}
}

func TestLossShapeMismatchPanics(t *testing.T) {
	for name, l := range map[string]Loss{
		"mse": NewMSE(), "ce": NewSoftmaxCE(), "bce": NewBCEWithLogits(),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			l.Forward(mat.New(1, 2), mat.New(1, 3))
		}()
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	for name, l := range map[string]Loss{
		"mse": NewMSE(), "ce": NewSoftmaxCE(), "bce": NewBCEWithLogits(),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			l.Backward()
		}()
	}
}
