package nn

import (
	"math"
	"testing"
	"testing/quick"

	"noble/internal/mat"
)

func TestDenseForwardKnown(t *testing.T) {
	rng := mat.NewRand(1)
	d := NewDense("d", 2, 2, InitZero, rng)
	d.Weight.W.SetRow(0, []float64{1, 2})
	d.Weight.W.SetRow(1, []float64{3, 4})
	d.Bias.W.SetRow(0, []float64{10, 20})
	x := mat.FromRows([][]float64{{1, 1}})
	out := d.Forward(x, false)
	if out.At(0, 0) != 14 || out.At(0, 1) != 26 {
		t.Fatalf("Dense forward = %v", out)
	}
}

func TestDenseShapePanic(t *testing.T) {
	rng := mat.NewRand(2)
	d := NewDense("d", 3, 2, InitXavier, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input width")
		}
	}()
	d.Forward(mat.New(1, 4), false)
}

func TestDenseBackwardBeforeForwardPanics(t *testing.T) {
	rng := mat.NewRand(3)
	d := NewDense("d", 2, 2, InitXavier, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Backward(mat.New(1, 2))
}

func TestXavierInitRange(t *testing.T) {
	rng := mat.NewRand(4)
	d := NewDense("d", 100, 100, InitXavier, rng)
	bound := math.Sqrt(6.0 / 200.0)
	lo, hi := mat.MinMax(d.Weight.W.Data)
	if lo < -bound || hi > bound {
		t.Fatalf("Xavier weights outside ±%v: [%v, %v]", bound, lo, hi)
	}
	if mat.Std(d.Weight.W.Data) < bound/4 {
		t.Fatal("Xavier weights suspiciously concentrated")
	}
	for _, b := range d.Bias.W.Data {
		if b != 0 {
			t.Fatal("bias must start at zero")
		}
	}
}

func TestHeInitStd(t *testing.T) {
	rng := mat.NewRand(5)
	d := NewDense("d", 200, 50, InitHe, rng)
	want := math.Sqrt(2.0 / 200.0)
	got := mat.Std(d.Weight.W.Data)
	if math.Abs(got-want) > want/4 {
		t.Fatalf("He std=%v want≈%v", got, want)
	}
}

func TestDenseFLOPs(t *testing.T) {
	rng := mat.NewRand(6)
	d := NewDense("d", 10, 20, InitXavier, rng)
	if d.FLOPs() != int64(2*10*20+20) {
		t.Fatalf("FLOPs=%d", d.FLOPs())
	}
}

func TestTanhForwardValues(t *testing.T) {
	x := mat.FromRows([][]float64{{0, 1, -1}})
	out := NewTanh().Forward(x, false)
	if out.At(0, 0) != 0 {
		t.Fatal("tanh(0) != 0")
	}
	if math.Abs(out.At(0, 1)-math.Tanh(1)) > 1e-15 {
		t.Fatal("tanh(1) wrong")
	}
	if out.At(0, 2) != -out.At(0, 1) {
		t.Fatal("tanh must be odd")
	}
}

func TestReLUForward(t *testing.T) {
	x := mat.FromRows([][]float64{{-1, 0, 2}})
	out := NewReLU().Forward(x, false)
	if out.At(0, 0) != 0 || out.At(0, 1) != 0 || out.At(0, 2) != 2 {
		t.Fatalf("relu = %v", out)
	}
}

func TestSigmoidStability(t *testing.T) {
	x := mat.FromRows([][]float64{{-1000, 0, 1000}})
	out := NewSigmoid().Forward(x, false)
	if out.At(0, 0) != 0 && out.At(0, 0) > 1e-300 {
		t.Fatalf("sigmoid(-1000)=%v", out.At(0, 0))
	}
	if out.At(0, 1) != 0.5 {
		t.Fatalf("sigmoid(0)=%v", out.At(0, 1))
	}
	if out.At(0, 2) != 1 {
		t.Fatalf("sigmoid(1000)=%v", out.At(0, 2))
	}
	for _, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("sigmoid produced non-finite value")
		}
	}
}

func TestBatchNormTrainNormalizes(t *testing.T) {
	bn := NewBatchNorm("bn", 3)
	rng := mat.NewRand(7)
	x := mat.New(64, 3)
	mat.FillNormal(x, rng, 5, 3) // far from standard
	out := bn.Forward(x, true)
	for j := 0; j < 3; j++ {
		col := out.Col(j)
		if m := mat.Mean(col); math.Abs(m) > 1e-9 {
			t.Fatalf("feature %d mean %v after BN", j, m)
		}
		if s := mat.Std(col); math.Abs(s-1) > 0.02 {
			t.Fatalf("feature %d std %v after BN", j, s)
		}
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	rng := mat.NewRand(8)
	for i := 0; i < 200; i++ {
		x := mat.New(32, 2)
		mat.FillNormal(x, rng, 4, 2)
		bn.Forward(x, true)
	}
	if math.Abs(bn.RunningMean[0]-4) > 0.3 {
		t.Fatalf("running mean %v want ≈4", bn.RunningMean[0])
	}
	if math.Abs(bn.RunningVar[0]-4) > 1.0 {
		t.Fatalf("running var %v want ≈4", bn.RunningVar[0])
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	bn.RunningMean[0] = 10
	bn.RunningVar[0] = 4
	x := mat.FromRows([][]float64{{12}})
	out := bn.Forward(x, false)
	want := (12.0 - 10.0) / math.Sqrt(4+bn.Eps)
	if math.Abs(out.At(0, 0)-want) > 1e-9 {
		t.Fatalf("eval BN=%v want %v", out.At(0, 0), want)
	}
}

func TestBatchNormShapePanic(t *testing.T) {
	bn := NewBatchNorm("bn", 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bn.Forward(mat.New(2, 4), true)
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := mat.NewRand(9)
	d := NewDropout(0.5, rng)
	x := mat.FromRows([][]float64{{1, 2, 3}})
	out := d.Forward(x, false)
	if !mat.Equal(out, x, 0) {
		t.Fatal("dropout must be identity at eval")
	}
}

func TestDropoutMaskConsistency(t *testing.T) {
	rng := mat.NewRand(10)
	d := NewDropout(0.5, rng)
	x := mat.New(4, 50)
	x.Fill(1)
	out := d.Forward(x, true)
	dout := mat.New(4, 50)
	dout.Fill(1)
	dx := d.Backward(dout)
	dropped, kept := 0, 0
	for i := range out.Data {
		if out.Data[i] == 0 {
			dropped++
			if dx.Data[i] != 0 {
				t.Fatal("gradient must be zero where activation was dropped")
			}
		} else {
			kept++
			if out.Data[i] != 2 { // 1/(1-0.5)
				t.Fatalf("kept activation scaled to %v want 2", out.Data[i])
			}
			if dx.Data[i] != 2 {
				t.Fatal("kept gradient must carry the same scale")
			}
		}
	}
	if dropped == 0 || kept == 0 {
		t.Fatalf("dropout mask degenerate: %d dropped, %d kept", dropped, kept)
	}
}

func TestBlockDenseMatchesPerBlockDense(t *testing.T) {
	rng := mat.NewRand(11)
	bd := NewBlockDense("p", 3, 4, 2, InitXavier, rng)
	x := mat.New(2, 12)
	mat.FillNormal(x, rng, 0, 1)
	out := bd.Forward(x, false)
	// Manually apply the shared inner layer to each block.
	for blk := 0; blk < 3; blk++ {
		sub := mat.New(2, 4)
		for i := 0; i < 2; i++ {
			copy(sub.Row(i), x.Row(i)[blk*4:(blk+1)*4])
		}
		want := bd.Inner.Forward(sub, false)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if math.Abs(out.At(i, blk*2+j)-want.At(i, j)) > 1e-12 {
					t.Fatalf("block %d mismatch", blk)
				}
			}
		}
	}
}

func TestBlockDenseShapePanic(t *testing.T) {
	rng := mat.NewRand(12)
	bd := NewBlockDense("p", 3, 4, 2, InitXavier, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bd.Forward(mat.New(1, 13), false)
}

func TestSequentialComposes(t *testing.T) {
	rng := mat.NewRand(13)
	s := NewSequential(NewDense("a", 2, 3, InitXavier, rng))
	s.Add(NewTanh())
	if len(s.Params()) != 2 {
		t.Fatalf("params=%d", len(s.Params()))
	}
	out := s.Forward(mat.New(1, 2), false)
	if out.Cols != 3 {
		t.Fatalf("out cols=%d", out.Cols)
	}
}

func TestNewMLPStructure(t *testing.T) {
	rng := mat.NewRand(14)
	m := NewMLP("t", 10, []int{128, 128}, true, rng)
	// 2 × (Dense + BN + Tanh)
	if len(m.Layers) != 6 {
		t.Fatalf("layers=%d want 6", len(m.Layers))
	}
	out := m.Forward(mat.New(3, 10), false)
	if out.Rows != 3 || out.Cols != 128 {
		t.Fatalf("MLP out %d×%d", out.Rows, out.Cols)
	}
	if m.FLOPs() <= 0 {
		t.Fatal("MLP FLOPs must be positive")
	}
}

func TestOneHotBatch(t *testing.T) {
	oh := OneHotBatch([]int{2, 0}, 3)
	if oh.At(0, 2) != 1 || oh.At(1, 0) != 1 {
		t.Fatalf("one-hot wrong: %v", oh)
	}
	var sum float64
	for _, v := range oh.Data {
		sum += v
	}
	if sum != 2 {
		t.Fatal("one-hot must have exactly one 1 per row")
	}
}

func TestOneHotBatchOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneHotBatch([]int{3}, 3)
}

func TestConcatSplitRoundTripProperty(t *testing.T) {
	rng := mat.NewRand(15)
	f := func(r8, a8, b8 uint8) bool {
		r, ca, cb := int(r8%4)+1, int(a8%4)+1, int(b8%4)+1
		a := mat.New(r, ca)
		b := mat.New(r, cb)
		mat.FillNormal(a, rng, 0, 1)
		mat.FillNormal(b, rng, 0, 1)
		joined := Concat(a, b)
		left, right := SplitCols(joined, ca)
		return mat.Equal(left, a, 0) && mat.Equal(right, b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Concat(mat.New(2, 1), mat.New(3, 1))
}

func TestSelectRows(t *testing.T) {
	m := mat.FromRows([][]float64{{1}, {2}, {3}})
	got := SelectRows(m, []int{2, 0})
	if got.At(0, 0) != 3 || got.At(1, 0) != 1 {
		t.Fatalf("SelectRows=%v", got)
	}
}

func TestParamCount(t *testing.T) {
	rng := mat.NewRand(16)
	d := NewDense("d", 3, 4, InitXavier, rng)
	if ParamCount(d.Params()) != 3*4+4 {
		t.Fatalf("ParamCount=%d", ParamCount(d.Params()))
	}
}
