package benchrig

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"noble/client"
	"noble/internal/loadshape"
)

// Default engine tuning for batched scenarios — the production defaults
// noble-serve ships with, so BENCH numbers describe the shipped config.
const (
	defaultWindow   = 2 * time.Millisecond
	defaultMaxBatch = 32
	payloadPool     = 64 // pre-generated payloads per pass, reused round-robin
	fixEvery        = 16 // tracking: WiFi re-anchor cadence in steps
	sessionWindow   = 2  // tracking: decode window in segments
)

// Suite returns the full named scenario set, in reporting order. Names
// are stable identifiers: the CI gate matches baseline to current run by
// name, so renaming one is a baseline-breaking change (see docs/BENCH.md).
func Suite() []Scenario {
	batched := EngineOptions{BatchWindow: defaultWindow, MaxBatch: defaultMaxBatch}
	return []Scenario{
		{
			Name: "cold_localize",
			Description: "sequential single-fingerprint localize on a just-booted engine, " +
				"first request included — the cold-start and lone-device path",
			Concurrency: 1,
			Unit:        "req/s",
			Kinds:       []string{"localize"},
			Engine:      batched,
			Run:         func(env *Env) error { return runLocalize(env, nil) },
		},
		{
			Name:        "localize_batch_c8",
			Description: "closed-loop batched localize, 8 concurrent devices (ramping concurrency, low)",
			Concurrency: 8,
			Unit:        "req/s",
			Kinds:       []string{"localize"},
			Engine:      batched,
			Run:         func(env *Env) error { return runLocalize(env, nil) },
		},
		{
			Name:        "localize_batch_c32",
			Description: "closed-loop batched localize, 32 concurrent devices (ramping concurrency, high)",
			Concurrency: 32,
			Unit:        "req/s",
			Kinds:       []string{"localize"},
			Engine:      batched,
			Run:         func(env *Env) error { return runLocalize(env, nil) },
		},
		{
			Name: "localize_int8_c32",
			Description: "localize_batch_c32 against the int8 quantized bundle — the quantized " +
				"tier's end-to-end speedup is this throughput over localize_batch_c32's",
			Concurrency: 32,
			Unit:        "req/s",
			Kinds:       []string{"localize"},
			Engine:      batched,
			NeedsInt8:   true,
			Run: func(env *Env) error {
				envQ := *env
				envQ.WiFi = env.WiFiInt8
				return runLocalize(&envQ, nil)
			},
		},
		{
			Name: "localize_unbatched_c32",
			Description: "closed-loop localize at 32 devices with micro-batching OFF — " +
				"the baseline the batching speedup is measured against",
			Concurrency: 32,
			Unit:        "req/s",
			Kinds:       []string{"localize"},
			Engine:      EngineOptions{BatchWindow: 0, MaxBatch: defaultMaxBatch},
			Run:         func(env *Env) error { return runLocalize(env, nil) },
		},
		{
			Name: "shadow_mirror_c32",
			Description: "localize_batch_c32 with a same-weights shadow generation staged and " +
				"10% of traffic mirrored through it off the request path — the mirrored-traffic " +
				"overhead scenario (budget: ≤5% throughput cost vs localize_batch_c32 on a " +
				"multi-core box; a saturated single vCPU pays the mirrored compute itself, ~10%)",
			Concurrency: 32,
			Unit:        "req/s",
			Kinds:       []string{"localize"},
			Engine: EngineOptions{
				BatchWindow: defaultWindow, MaxBatch: defaultMaxBatch,
				MirrorRate: 0.1, ShadowWiFi: true,
			},
			Run: func(env *Env) error { return runLocalize(env, nil) },
		},
		{
			Name: "track_sessions_c16",
			Description: "steady-state stateful tracking: 16 device sessions streaming one IMU " +
				"segment per request, WiFi re-anchor every 16 steps, journal off",
			Concurrency: 16,
			Unit:        "steps/s",
			Kinds:       []string{"track", "localize"},
			Engine:      batched,
			Run:         func(env *Env) error { return runTrackSessions(env, nil) },
		},
		{
			Name: "track_int8_c16",
			Description: "track_sessions_c16 with both the IMU tracker and the re-anchor " +
				"localizer on the int8 tier",
			Concurrency: 16,
			Unit:        "steps/s",
			Kinds:       []string{"track", "localize"},
			Engine:      batched,
			NeedsInt8:   true,
			Run: func(env *Env) error {
				envQ := *env
				envQ.IMU = env.IMUInt8
				envQ.WiFi = env.WiFiInt8
				return runTrackSessions(&envQ, nil)
			},
		},
		{
			Name: "track_journal_c16",
			Description: "track_sessions_c16 with durable sessions on (-fsync=interval WAL) — " +
				"the journaling overhead scenario",
			Concurrency: 16,
			Unit:        "steps/s",
			Kinds:       []string{"track", "localize"},
			Engine: EngineOptions{
				BatchWindow: defaultWindow, MaxBatch: defaultMaxBatch, Journal: true,
			},
			Run: func(env *Env) error { return runTrackSessions(env, nil) },
		},
		{
			Name: "track_stream_c8",
			Description: "NDJSON streaming tracking over POST /v2/track/stream: 8 device " +
				"connections, one segment line per estimate line",
			Concurrency: 8,
			Unit:        "steps/s",
			Kinds:       []string{"track"},
			Engine:      batched,
			Run:         runTrackStream,
		},
		{
			Name: "mixed_deadline_c24",
			Description: "deadline-heavy mixed traffic: 16 localize + 8 session-track workers, " +
				"every request deadlined, every 4th localize deadline set below the batch window " +
				"so expiry and queue-drop paths stay hot; expired requests count as completed ops " +
				"(expiry is the designed outcome) but still show under errors",
			Concurrency: 24,
			Unit:        "ops/s",
			Kinds:       []string{"localize", "track"},
			Engine:      batched,
			Run:         runMixedDeadline,
			OpsClasses:  []string{loadshape.ErrClassDeadline},
		},
		{
			Name: "mixed_precision_c24",
			Description: "mixed-registry localize: 12 workers on the fp64 bundle and 12 on its " +
				"int8 twin, concurrently against one engine — the rolling-upgrade traffic shape",
			Concurrency: 24,
			Unit:        "req/s",
			Kinds:       []string{"localize"},
			Engine:      batched,
			NeedsInt8:   true,
			Run:         runMixedPrecision,
		},
	}
}

// runMixedPrecision splits the localize workers evenly across the fp64
// bundle and its int8 twin — the traffic shape of a fleet mid-way
// through a precision rollout, where both tiers batch on one engine.
func runMixedPrecision(env *Env) error {
	half := env.Concurrency / 2
	done := make(chan error, 2)
	go func() {
		envF := *env
		envF.Concurrency = half
		done <- runLocalize(&envF, nil)
	}()
	go func() {
		envQ := *env
		envQ.Concurrency = env.Concurrency - half
		envQ.WiFi = env.WiFiInt8
		done <- runLocalize(&envQ, nil)
	}()
	if err := <-done; err != nil {
		return err
	}
	return <-done
}

// rng returns the scenario payload generator: seeded, so every pass and
// every machine replays the identical request stream.
func (e *Env) rng() *rand.Rand { return rand.New(rand.NewSource(e.Seed)) }

// deadlineFor wraps env.Ctx with a per-request deadline; d <= 0 means
// none.
func deadlineFor(env *Env, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return env.Ctx, func() {}
	}
	return context.WithTimeout(env.Ctx, d)
}

// runLocalize is the closed-loop stateless localize workload: every
// worker keeps one single-fingerprint request in flight. deadline may
// assign a per-request deadline by (worker, step); nil means none.
// Latency and errors are recorded by the client request hook.
func runLocalize(env *Env, deadline func(w, step int) time.Duration) error {
	rng := env.rng()
	pool := make([]*client.PreparedLocalize, payloadPool)
	for i := range pool {
		pool[i] = client.PrepareLocalize(env.WiFi.Name, loadshape.SynthFingerprint(rng, env.WiFi.InputDim))
	}
	env.EachWorker(env.Concurrency, func(w int) {
		for step := 0; !env.Expired(); step++ {
			var d time.Duration
			if deadline != nil {
				d = deadline(w, step)
			}
			ctx, cancel := deadlineFor(env, d)
			// Errors are data: the hook records them by class.
			_, _ = env.Client.LocalizePrepared(ctx, pool[(w*31+step)%payloadPool])
			cancel()
		}
	})
	return nil
}

// trackRequests pre-builds one pass's session request pools.
func trackRequests(env *Env) (create client.AppendRequest, steps, fixes []client.AppendRequest) {
	rng := env.rng()
	create = client.AppendRequest{
		Model: env.IMU.Name, Start: &client.XY{}, Window: sessionWindow,
		Features: loadshape.SynthSegment(rng, env.IMU.SegmentDim),
	}
	steps = make([]client.AppendRequest, payloadPool)
	for i := range steps {
		steps[i] = client.AppendRequest{Features: loadshape.SynthSegment(rng, env.IMU.SegmentDim)}
	}
	fixes = make([]client.AppendRequest, payloadPool)
	for i := range fixes {
		fixes[i] = client.AppendRequest{
			Features:    loadshape.SynthSegment(rng, env.IMU.SegmentDim),
			WiFiModel:   env.WiFi.Name,
			Fingerprint: loadshape.SynthFingerprint(rng, env.WiFi.InputDim),
		}
	}
	return create, steps, fixes
}

// stepRequest sequences one tracking worker's traffic: create first,
// then segment appends with a periodic WiFi fix.
func stepRequest(step int, create client.AppendRequest, steps, fixes []client.AppendRequest) client.AppendRequest {
	switch {
	case step == 0:
		return create
	case step%fixEvery == 0:
		return fixes[step%payloadPool]
	default:
		return steps[step%payloadPool]
	}
}

// runTrackSessions is the stateful tracking workload: each worker is one
// device session appending a segment per request. deadline is as in
// runLocalize.
func runTrackSessions(env *Env, deadline func(w, step int) time.Duration) error {
	create, steps, fixes := trackRequests(env)
	env.EachWorker(env.Concurrency, func(w int) {
		sess := env.Client.Session(fmt.Sprintf("perf%d-%d", env.Seed, w))
		for step := 0; !env.Expired(); step++ {
			var d time.Duration
			if deadline != nil {
				d = deadline(w, step)
			}
			ctx, cancel := deadlineFor(env, d)
			_, _ = sess.Append(ctx, stepRequest(step, create, steps, fixes))
			cancel()
		}
	})
	return nil
}

// runTrackStream drives tracking over the /v2 NDJSON streaming protocol:
// one connection per device, one segment line per estimate line. The
// stream bypasses the request hook, so each send→recv round trip is
// recorded explicitly.
func runTrackStream(env *Env) error {
	create, steps, fixes := trackRequests(env)
	errs := make(chan error, env.Concurrency)
	env.EachWorker(env.Concurrency, func(w int) {
		st, err := env.Client.TrackStream(env.Ctx, client.StreamOpen{
			Session:       fmt.Sprintf("perf%d-%d", env.Seed, w),
			AppendRequest: create,
		})
		if err != nil {
			errs <- fmt.Errorf("worker %d: opening stream: %w", w, err)
			return
		}
		defer st.Close()
		if _, err := st.Recv(); err != nil {
			errs <- fmt.Errorf("worker %d: stream open ack: %w", w, err)
			return
		}
		for step := 1; !env.Expired(); step++ {
			t0 := time.Now()
			err := st.Send(stepRequest(step, create, steps, fixes))
			if err == nil {
				_, err = st.Recv()
			}
			env.Rec.Record(time.Since(t0), err)
			if err != nil {
				// A stream error is terminal for this device: the
				// connection (or the server side of it) is gone.
				return
			}
		}
	})
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// Mixed-traffic deadline ladder: every request carries a deadline; every
// 4th localize request gets one below the 2 ms batch window, so a
// deterministic slice of traffic exercises expiry + queue-drop.
const (
	generousDeadline = 25 * time.Millisecond
	tightDeadline    = 1 * time.Millisecond
)

// runMixedDeadline mixes stateless localize and stateful tracking under
// per-request deadlines: 2/3 of workers localize, 1/3 track.
func runMixedDeadline(env *Env) error {
	localizers := env.Concurrency * 2 / 3
	ladder := func(w, step int) time.Duration {
		if step%4 == 3 {
			return tightDeadline
		}
		return generousDeadline
	}
	trackDeadline := func(w, step int) time.Duration { return generousDeadline }

	done := make(chan error, 2)
	go func() {
		envL := *env
		envL.Concurrency = localizers
		done <- runLocalize(&envL, ladder)
	}()
	go func() {
		envT := *env
		envT.Concurrency = env.Concurrency - localizers
		done <- runTrackSessions(&envT, trackDeadline)
	}()
	if err := <-done; err != nil {
		return err
	}
	return <-done
}
