package benchrig

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"noble/client"
	"noble/internal/loadshape"
)

// Recorder collects per-operation latency and error-class counts for one
// measured pass. It is fed either by the client SDK's request hook
// (request/response scenarios) or by explicit Record calls (streaming
// scenarios, where there is no request/response exchange to hook). It is
// safe for concurrent use.
//
// The recorder starts disarmed so setup traffic (model discovery,
// warm-up of the connection pool) never pollutes the measurement; the
// rig arms it at the start of the measured window.
type Recorder struct {
	armed atomic.Bool

	mu   sync.Mutex
	lats []float64 // seconds; successful operations only
	errs map[string]int64
}

// NewRecorder returns a disarmed recorder.
func NewRecorder() *Recorder {
	return &Recorder{errs: make(map[string]int64)}
}

// Arm starts accepting observations.
func (r *Recorder) Arm() { r.armed.Store(true) }

// Disarm stops accepting observations.
func (r *Recorder) Disarm() { r.armed.Store(false) }

// Hook adapts the recorder to the client SDK's per-request hook: one
// observation per wire exchange, classified by status and error.
func (r *Recorder) Hook() client.RequestHook {
	return func(o client.RequestObservation) {
		r.observe(o.Duration, loadshape.Classify(o.Status, o.Err))
	}
}

// Record logs one operation timed by the scenario itself (streaming
// scenarios, where no hook fires). err nil means success.
func (r *Recorder) Record(d time.Duration, err error) {
	r.observe(d, loadshape.ClassifyError(err))
}

// observe files one observation under its class.
func (r *Recorder) observe(d time.Duration, class string) {
	if !r.armed.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if class != "" {
		r.errs[class]++
		return
	}
	r.lats = append(r.lats, d.Seconds())
}

// Counts is a recorder's aggregate view of one pass.
type Counts struct {
	Ok      int64
	Errors  int64
	ByClass map[string]int64 // error class → count; empty classes omitted
	Latency LatencyMs
}

// Snapshot summarizes everything recorded so far.
func (r *Recorder) Snapshot() Counts {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := Counts{Ok: int64(len(r.lats)), ByClass: make(map[string]int64, len(r.errs))}
	for class, n := range r.errs {
		c.Errors += n
		c.ByClass[class] = n
	}
	c.Latency = summarizeSeconds(r.lats)
	return c
}

// LatencyMs is a latency distribution in milliseconds.
type LatencyMs struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// summarizeSeconds reduces a sample set (seconds) to LatencyMs. The
// input is copied, not reordered.
func summarizeSeconds(samples []float64) LatencyMs {
	if len(samples) == 0 {
		return LatencyMs{}
	}
	vals := append([]float64(nil), samples...)
	sort.Float64s(vals)
	q := func(p float64) float64 {
		return vals[int(p*float64(len(vals)-1))] * 1000
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return LatencyMs{
		Mean: sum / float64(len(vals)) * 1000,
		P50:  q(0.50),
		P95:  q(0.95),
		P99:  q(0.99),
		Max:  vals[len(vals)-1] * 1000,
	}
}
