package benchrig

import (
	"strings"
	"testing"
)

// bench builds a minimal report around one scenario's numbers.
func bench(name string, throughput, p99 float64) *Bench {
	return &Bench{
		Schema: Schema,
		Host:   CurrentHost(),
		Scenarios: []ScenarioResult{{
			Name: name, Unit: "req/s", Throughput: throughput,
			LatencyMs: LatencyMs{P99: p99},
		}},
	}
}

func TestGatePassesWithinThresholds(t *testing.T) {
	base := bench("s", 1000, 2.0)
	for _, cur := range []*Bench{
		bench("s", 1000, 2.0), // identical
		bench("s", 900, 2.4),  // -10% throughput, +20% p99: inside both limits
		bench("s", 5000, 0.1), // strictly better
	} {
		if f := Gate(cur, base, DefaultGate()); len(f) != 0 {
			t.Fatalf("gate failed a healthy run: %v", f)
		}
	}
}

func TestGateFailsThroughputDrop(t *testing.T) {
	f := Gate(bench("s", 800, 2.0), bench("s", 1000, 2.0), DefaultGate())
	if len(f) != 1 || f[0].Check != "throughput" {
		t.Fatalf("findings %v, want one throughput violation", f)
	}
}

func TestGateFailsP99Inflation(t *testing.T) {
	f := Gate(bench("s", 1000, 3.0), bench("s", 1000, 2.0), DefaultGate())
	if len(f) != 1 || f[0].Check != "p99" {
		t.Fatalf("findings %v, want one p99 violation", f)
	}
}

func TestGateP99FloorAbsorbsMicroJitter(t *testing.T) {
	// 0.04 ms → 0.08 ms is +100%, but both sit under the 0.25 ms floor:
	// scheduler noise, not a regression.
	if f := Gate(bench("s", 1000, 0.08), bench("s", 1000, 0.04), DefaultGate()); len(f) != 0 {
		t.Fatalf("floor did not absorb sub-floor jitter: %v", f)
	}
	// And a genuinely inflated p99 over a tiny baseline still fails once
	// it clears the floor with the allowed inflation.
	if f := Gate(bench("s", 1000, 1.0), bench("s", 1000, 0.04), DefaultGate()); len(f) != 1 {
		t.Fatalf("floor swallowed a real regression: %v", f)
	}
}

func TestGateCalibrationNormalizesMachineDrift(t *testing.T) {
	// Baseline recorded on a machine (or at an hour) running 2x faster:
	// raw numbers show -50% throughput and +100% p99, but the calibration
	// ratio says the machine itself halved, so nothing regressed.
	base := bench("s", 2000, 1.0)
	base.Host.CalibrationMflops = 4000
	cur := bench("s", 1000, 2.0)
	cur.Host.CalibrationMflops = 2000
	if f := Gate(cur, base, DefaultGate()); len(f) != 0 {
		t.Fatalf("calibration did not absorb machine drift: %v", f)
	}
	// A real regression on top of the drift still fails: the machine
	// halved but throughput fell to a third.
	cur = bench("s", 666, 2.0)
	cur.Host.CalibrationMflops = 2000
	if f := Gate(cur, base, DefaultGate()); len(f) != 1 || f[0].Check != "throughput" {
		t.Fatalf("calibration swallowed a real regression: %v", f)
	}
}

func TestGateCalibrationRatioClamped(t *testing.T) {
	// The ratio caps at 1: a faster machine never tightens thresholds
	// (scenario numbers are partly window-bound, not CPU-bound), so a
	// regression on a faster machine is still judged against the
	// face-value baseline.
	base := bench("s", 1000, 0.2)
	base.Host.CalibrationMflops = 100
	cur := bench("s", 100, 0.2)
	cur.Host.CalibrationMflops = 10000
	if f := Gate(cur, base, DefaultGate()); len(f) != 1 || f[0].Check != "throughput" {
		t.Fatalf("faster-machine regression missed: %v", f)
	}
	// And a faster machine merely MATCHING the baseline passes — the cap
	// must not demand speed-times-baseline from window-bound scenarios.
	match := bench("s", 1000, 0.2)
	match.Host.CalibrationMflops = 10000
	if f := Gate(match, base, DefaultGate()); len(f) != 0 {
		t.Fatalf("faster machine at baseline throughput failed: %v", f)
	}
	// The floor clamp (0.25) keeps a corrupt low calibration from
	// relaxing thresholds into meaninglessness: machine "100x slower",
	// throughput 1/10 — the adjusted bar is base*0.25, and 100 < 212.
	slow := bench("s", 100, 0.2)
	slow.Host.CalibrationMflops = 1
	if f := Gate(slow, base, DefaultGate()); len(f) != 1 || f[0].Check != "throughput" {
		t.Fatalf("floor clamp missing: %v", f)
	}
	// Missing calibration on either side compares at face value.
	base.Host.CalibrationMflops = 0
	if f := Gate(bench("s", 1000, 0.2), base, DefaultGate()); len(f) != 0 {
		t.Fatalf("uncalibrated comparison broke: %v", f)
	}
}

func TestCalibrateReturnsPlausibleSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs a ~300ms kernel")
	}
	mflops := Calibrate()
	// Any machine that can run the suite does 3-digit MFLOP/s on a
	// scalar matmul; the assert only guards sign/zero bugs.
	if mflops < 10 || mflops > 1e7 {
		t.Fatalf("implausible calibration %f MFLOP/s", mflops)
	}
}

func TestGateMissingScenarioFails(t *testing.T) {
	cur := bench("other", 1000, 2.0)
	f := Gate(cur, bench("s", 1000, 2.0), DefaultGate())
	if len(f) != 1 || f[0].Check != "missing" {
		t.Fatalf("findings %v, want one missing violation", f)
	}
	// The reverse — new scenarios in the current run — is fine.
	if f := Gate(bench("s", 1000, 2.0), bench("s", 1000, 2.0), DefaultGate()); len(f) != 0 {
		t.Fatalf("identical run failed: %v", f)
	}
}

func TestGateReportRendersVerdict(t *testing.T) {
	base, cur := bench("s", 1000, 2.0), bench("s", 400, 2.0)
	var b strings.Builder
	WriteGateReport(&b, cur, base, Gate(cur, base, DefaultGate()))
	out := b.String()
	if !strings.Contains(out, "gate: FAIL") || !strings.Contains(out, "-60.0%") {
		t.Fatalf("report missing verdict/delta:\n%s", out)
	}
	b.Reset()
	WriteGateReport(&b, base, base, nil)
	if !strings.Contains(b.String(), "gate: PASS") {
		t.Fatalf("pass report missing verdict:\n%s", b.String())
	}
}

func TestReadBenchRoundTripAndSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	b := NewBench("ci", 42, 3, []ScenarioResult{{
		Name: "s", Unit: "req/s", Throughput: 123.4,
		Batch: map[string]BatchReport{"localize": {Passes: 10, Rows: 100, AvgRows: 10}},
	}})
	path := dir + "/BENCH.json"
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Seed != 42 {
		t.Fatalf("round trip lost header: %+v", got)
	}
	s, ok := got.Scenario("s")
	if !ok || s.Throughput != 123.4 || s.Batch["localize"].Rows != 100 {
		t.Fatalf("round trip lost scenario: %+v", s)
	}

	// A foreign schema is refused, not misread.
	got.Schema = "noble-bench/v999"
	if err := got.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBench(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("foreign schema accepted: %v", err)
	}
}
