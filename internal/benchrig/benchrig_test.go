package benchrig

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"noble/internal/serve"
)

// Demo bundles shared across rig tests, trained once per test binary
// (the tiny spec trains in well under a second).
var (
	demoOnce sync.Once
	demoDir  string
	demoErr  error
)

func demoModels(t *testing.T) string {
	t.Helper()
	demoOnce.Do(func() {
		demoDir, demoErr = os.MkdirTemp("", "benchrig-models-")
		if demoErr == nil {
			demoErr = serve.TrainDemoBundles(demoDir, serve.DemoTiny, nil)
		}
	})
	if demoErr != nil {
		t.Fatalf("training demo bundles: %v", demoErr)
	}
	return demoDir
}

func testRig(t *testing.T) *Rig {
	dir := demoModels(t)
	return &Rig{
		NewRegistry: func() (*serve.Registry, error) {
			reg := serve.NewRegistry(dir, func(string, ...any) {})
			if _, _, err := reg.Reload(); err != nil {
				return nil, err
			}
			return reg, nil
		},
		Seed:            7,
		PassDuration:    150 * time.Millisecond,
		WarmupDuration:  50 * time.Millisecond,
		MinPassDuration: 50 * time.Millisecond,
		Runs:            2,
	}
}

func TestRigRunsLocalizeScenario(t *testing.T) {
	rig := testRig(t)
	suite := Suite()
	sc := suite[0] // cold_localize
	res, err := rig.RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "cold_localize" || res.Ok == 0 || res.Throughput <= 0 {
		t.Fatalf("thin result: %+v", res)
	}
	if len(res.RunThroughputs) != 2 {
		t.Fatalf("%d run throughputs, want 2", len(res.RunThroughputs))
	}
	if res.LatencyMs.P99 < res.LatencyMs.P50 || res.LatencyMs.Max < res.LatencyMs.P99 {
		t.Fatalf("inconsistent latency summary: %+v", res.LatencyMs)
	}
	lb, ok := res.Batch["localize"]
	if !ok || lb.Passes == 0 || lb.Rows == 0 {
		t.Fatalf("batch counters missing: %+v", res.Batch)
	}
	var histTotal int64
	for _, b := range lb.SizeHist {
		histTotal += b.Passes
	}
	if histTotal != lb.Passes {
		t.Fatalf("size histogram sums to %d, want %d passes", histTotal, lb.Passes)
	}
}

func TestRigRunsJournaledTrackingScenario(t *testing.T) {
	rig := testRig(t)
	var sc Scenario
	for _, s := range Suite() {
		if s.Name == "track_journal_c16" {
			sc = s
		}
	}
	sc.Concurrency = 4 // keep the test light
	res, err := rig.RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok == 0 || res.Batch["track"].Rows == 0 {
		t.Fatalf("journaled tracking produced nothing: %+v", res)
	}
}

func TestRigRejectsZeroSuccessPasses(t *testing.T) {
	rig := testRig(t)
	sc := Scenario{
		Name: "broken", Concurrency: 1, Unit: "req/s",
		Engine: EngineOptions{},
		// A scenario that never records a success must fail the run, not
		// produce a zero-throughput result the gate would then trust.
		Run: func(env *Env) error {
			for !env.Expired() {
				time.Sleep(5 * time.Millisecond)
			}
			return nil
		},
	}
	if _, err := rig.RunScenario(context.Background(), sc); err == nil {
		t.Fatal("zero-success scenario must error")
	}
}

func TestRigPropagatesScenarioError(t *testing.T) {
	rig := testRig(t)
	rig.WarmupDuration = 0
	boom := errors.New("harness broke")
	sc := Scenario{
		Name: "exploding", Concurrency: 1, Unit: "req/s",
		Run: func(env *Env) error { return boom },
	}
	if _, err := rig.RunScenario(context.Background(), sc); !errors.Is(err, boom) {
		t.Fatalf("err %v, want the scenario's own error", err)
	}
}

func TestSuiteNamesAreStableAndUnique(t *testing.T) {
	// The CI gate joins baseline to current by scenario name; this pins
	// the published set so a rename is a conscious baseline-breaking
	// change, not an accident.
	want := []string{
		"cold_localize",
		"localize_batch_c8",
		"localize_batch_c32",
		"localize_int8_c32",
		"localize_unbatched_c32",
		"shadow_mirror_c32",
		"track_sessions_c16",
		"track_int8_c16",
		"track_journal_c16",
		"track_stream_c8",
		"mixed_deadline_c24",
		"mixed_precision_c24",
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("%d scenarios, want %d", len(suite), len(want))
	}
	seen := map[string]bool{}
	for i, sc := range suite {
		if sc.Name != want[i] {
			t.Fatalf("scenario %d is %q, want %q", i, sc.Name, want[i])
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Run == nil || sc.Concurrency <= 0 || sc.Unit == "" {
			t.Fatalf("scenario %q underspecified: %+v", sc.Name, sc)
		}
	}
}
