package benchrig

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"noble/internal/obs"
	"noble/internal/serve"
)

// Schema is the BENCH.json format identifier. Bump the suffix on any
// breaking change to the JSON shape; readers (the gate, dashboards)
// refuse unknown schemas instead of misreading them. The full schema is
// documented in docs/BENCH.md.
const Schema = "noble-bench/v1"

// Bench is the machine-readable result of one harness run — the
// top-level object of BENCH.json.
type Bench struct {
	Schema      string           `json:"schema"`
	GeneratedAt string           `json:"generated_at"` // RFC3339
	Preset      string           `json:"preset"`
	Seed        int64            `json:"seed"`
	Runs        int              `json:"runs"` // measured passes per scenario (peak reported)
	Host        HostInfo         `json:"host"`
	Scenarios   []ScenarioResult `json:"scenarios"`
}

// HostInfo pins where the numbers were recorded; the gate warns when a
// baseline from a different host shape is compared.
type HostInfo struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`

	// CalibrationMflops is the reference-kernel speed measured by
	// Calibrate at report time. The gate divides the two reports'
	// calibrations to separate machine drift from code regressions.
	CalibrationMflops float64 `json:"calibration_mflops,omitempty"`
}

// SameShape reports whether two hosts are nominally the same machine
// class (calibration excluded — it varies run to run by design).
func (h HostInfo) SameShape(o HostInfo) bool {
	return h.GOOS == o.GOOS && h.GOARCH == o.GOARCH &&
		h.NumCPU == o.NumCPU && h.GoVersion == o.GoVersion
}

// CurrentHost describes the running machine.
func CurrentHost() HostInfo {
	return HostInfo{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// ScenarioResult is one scenario's numbers, taken from the best pass
// by throughput (peak) of the measured runs — see the package comment
// for why peak, not median, under interference noise.
type ScenarioResult struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Concurrency int    `json:"concurrency"`
	Unit        string `json:"unit"` // "req/s", "steps/s", "ops/s"

	ElapsedSec     float64          `json:"elapsed_sec"` // peak pass wall clock
	Ok             int64            `json:"ok"`
	Errors         int64            `json:"errors"`
	ErrorClasses   map[string]int64 `json:"error_classes,omitempty"`
	Throughput     float64          `json:"throughput"`      // ok operations per second, peak pass
	RunThroughputs []float64        `json:"run_throughputs"` // every measured pass, run order

	LatencyMs LatencyMs `json:"latency_ms"`

	// Batch holds the server-side coalescing counters accumulated during
	// the peak pass, keyed by batcher kind ("localize", "track").
	Batch map[string]BatchReport `json:"batch,omitempty"`

	// Stages attributes the peak pass's server-side latency to pipeline
	// stages (decode, queue_wait, batch_pass, session_lock,
	// journal_append, journal_fsync, encode, total), from the engine
	// tracer's per-stage histograms. Absent when the pass ran with
	// tracing disabled.
	Stages map[string]StageReport `json:"stages,omitempty"`
}

// StageReport is one pipeline stage's latency contribution during a
// pass: how many spans hit the stage and how their durations sum out.
type StageReport struct {
	Count   int64   `json:"count"`
	TotalMs float64 `json:"total_ms"`
	AvgMs   float64 `json:"avg_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// stageReport converts a tracer stage snapshot into the report shape.
func stageReport(s obs.StageStats) StageReport {
	r := StageReport{
		Count:   s.Count,
		TotalMs: s.SumSeconds * 1e3,
		MaxMs:   s.MaxSeconds * 1e3,
	}
	if s.Count > 0 {
		r.AvgMs = r.TotalMs / float64(s.Count)
	}
	return r
}

// BatchReport is one batcher kind's coalescing behavior during a pass.
type BatchReport struct {
	Passes      int64        `json:"passes"`
	Rows        int64        `json:"rows"`
	AvgRows     float64      `json:"avg_rows"`
	MaxRows     int64        `json:"max_rows"`
	DroppedRows int64        `json:"dropped_rows"`
	SizeHist    []SizeBucket `json:"size_hist"`
}

// SizeBucket is one batch-size histogram bucket: passes whose row count
// fell in (previous bound, Le]; the final bucket has Le "+Inf".
type SizeBucket struct {
	Le     string `json:"le"`
	Passes int64  `json:"passes"`
}

// batchReport converts an engine snapshot into the report shape.
func batchReport(s serve.BatchSnapshot) BatchReport {
	r := BatchReport{
		Passes:      s.Passes,
		Rows:        s.Rows,
		MaxRows:     s.MaxRows,
		DroppedRows: s.DroppedRows,
	}
	if s.Passes > 0 {
		r.AvgRows = float64(s.Rows) / float64(s.Passes)
	}
	bounds := serve.BatchSizeBuckets()
	for i, n := range s.SizeCounts {
		le := "+Inf"
		if i < len(bounds) {
			le = fmt.Sprint(bounds[i])
		}
		r.SizeHist = append(r.SizeHist, SizeBucket{Le: le, Passes: n})
	}
	return r
}

// NewBench assembles the top-level report around scenario results.
func NewBench(preset string, seed int64, runs int, scenarios []ScenarioResult) *Bench {
	return &Bench{
		Schema:      Schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Preset:      preset,
		Seed:        seed,
		Runs:        runs,
		Host:        CurrentHost(),
		Scenarios:   scenarios,
	}
}

// Scenario finds a result by name.
func (b *Bench) Scenario(name string) (ScenarioResult, bool) {
	for _, s := range b.Scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return ScenarioResult{}, false
}

// WriteJSON writes the report, indented for diff-friendly commits.
func (b *Bench) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadBench loads and schema-checks a BENCH.json.
func ReadBench(path string) (*Bench, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bench
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, this build reads %q", path, b.Schema, Schema)
	}
	return &b, nil
}

// WriteTable renders the human-readable summary.
func (b *Bench) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "noble-perf %s preset=%s seed=%d runs=%d (%s/%s, %d cpu, %s)\n",
		b.Schema, b.Preset, b.Seed, b.Runs,
		b.Host.GOOS, b.Host.GOARCH, b.Host.NumCPU, b.Host.GoVersion)
	fmt.Fprintf(w, "%-26s %5s %12s %9s %9s %9s %7s %9s\n",
		"scenario", "conc", "throughput", "p50 ms", "p95 ms", "p99 ms", "errors", "avg batch")
	for _, s := range b.Scenarios {
		avg := "-"
		var kinds []string
		for kind := range s.Batch {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			if r := s.Batch[kind]; r.Passes > 0 {
				if avg == "-" {
					avg = fmt.Sprintf("%.1f", r.AvgRows)
				} else {
					avg += fmt.Sprintf("/%.1f", r.AvgRows)
				}
			}
		}
		fmt.Fprintf(w, "%-26s %5d %8.0f %s %9.2f %9.2f %9.2f %7d %9s\n",
			s.Name, s.Concurrency, s.Throughput, s.Unit,
			s.LatencyMs.P50, s.LatencyMs.P95, s.LatencyMs.P99, s.Errors, avg)
	}
}
