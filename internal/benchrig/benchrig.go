// Package benchrig is the deterministic performance harness behind
// cmd/noble-perf and the CI perf gate: it boots a real serve.Engine
// behind a real HTTP listener, drives named workload scenarios through
// the public client SDK — the same code path a device fleet uses — and
// reduces each scenario to machine-readable numbers (throughput,
// latency quantiles, server-side batch occupancy, error classes) for
// BENCH.json.
//
// Methodology, shared by every scenario:
//
//   - Each pass runs against a FRESH engine and listener, so no state
//     (sessions, batch counters, connection pools) leaks between passes
//     and the cold-start scenario is genuinely cold.
//   - Every scenario runs one discarded warm-up pass, then Runs measured
//     passes; the reported numbers come from the BEST pass by throughput
//     (peak). Under interference noise — CI runners, shared containers —
//     the peak is the least-disturbed observation: a descheduled pass
//     cannot drag the number down, while a real regression depresses
//     every pass and therefore still moves it. Every pass's throughput
//     is retained in the report for inspection.
//   - Payload generation is seeded, so the request stream is identical
//     run to run and machine to machine.
//   - A measured pass shorter than MinPassDuration, or with zero
//     successful operations, fails the run instead of producing numbers
//     too thin to gate on.
package benchrig

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"noble/client"
	"noble/internal/obs"
	"noble/internal/serve"
	"noble/internal/store"
)

// EngineOptions selects the serving configuration a scenario measures.
type EngineOptions struct {
	// BatchWindow is the micro-batch coalescing window (0 disables
	// batching — the unbatched baseline scenarios).
	BatchWindow time.Duration
	// MaxBatch caps rows per coalesced pass (0 = engine default).
	MaxBatch int
	// Journal turns on durable sessions: each pass journals into a fresh
	// temporary WAL directory with -fsync=interval semantics, deleted
	// when the pass ends.
	Journal bool
	// NoTrace disables request tracing for this scenario (the engine
	// default is tracing on at full sampling). The overhead-baseline
	// runs use it to put a number on the tracer's cost.
	NoTrace bool
	// MirrorRate samples this fraction of traffic through staged
	// generations for live shadow evaluation (0 disables mirroring).
	MirrorRate float64
	// ShadowWiFi stages a shadow copy of the fp64 WiFi model — same
	// weights, fresh lifecycle state — before traffic starts, so a
	// MirrorRate scenario has a staged generation to mirror through.
	ShadowWiFi bool
}

// Scenario is one named workload. Run drives load until env.Expired()
// and returns an error only for harness malfunction (cannot connect,
// cannot open a stream) — per-request failures are data, recorded in
// env.Rec, not errors.
type Scenario struct {
	Name        string
	Description string
	Concurrency int
	Unit        string   // throughput unit: "req/s", "steps/s", "ops/s"
	Kinds       []string // batcher kinds to snapshot ("localize", "track")
	Engine      EngineOptions
	Run         func(env *Env) error

	// NeedsInt8 marks scenarios that drive the quantized tier: the pass
	// fails up front (harness misconfiguration, not data) when the
	// registry holds no int8 models.
	NeedsInt8 bool

	// OpsClasses lists error classes that still count as completed
	// operations for throughput. The deadline scenario sets it to
	// {"deadline"}: an intentionally expired request exercised the drop
	// path exactly as designed, and excluding it would couple the
	// throughput number to how many requests happened to expire — pure
	// scheduling noise. The classes still appear under errors in the
	// report.
	OpsClasses []string
}

// Env is what a scenario's Run sees: a client wired to the pass's
// server, the recorder, and the pass boundary.
type Env struct {
	Ctx         context.Context
	Client      *client.Client
	Rec         *Recorder
	Seed        int64
	Concurrency int
	WiFi        client.ModelInfo // first fp64 wifi-kind model
	IMU         client.ModelInfo // first fp64 imu-kind model
	WiFiInt8    client.ModelInfo // first int8 wifi-kind model (zero if none registered)
	IMUInt8     client.ModelInfo // first int8 imu-kind model (zero if none registered)

	deadline time.Time
}

// Expired reports whether the measured window is over; worker loops
// check it before every operation.
func (e *Env) Expired() bool { return !time.Now().Before(e.deadline) }

// EachWorker runs f on n goroutines (worker index passed in) and waits.
func (e *Env) EachWorker(n int, f func(w int)) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f(w)
		}(w)
	}
	wg.Wait()
}

// Rig runs scenarios. NewRegistry must return a freshly loaded model
// registry per call (one per pass); everything else has usable defaults
// via Preset.
type Rig struct {
	NewRegistry func() (*serve.Registry, error)
	Logf        func(format string, args ...any) // nil = silent

	Seed            int64
	NoTrace         bool          // disable tracing in every pass (overhead baseline runs)
	PassDuration    time.Duration // measured pass length
	WarmupDuration  time.Duration // discarded warm-up pass length
	MinPassDuration time.Duration // floor below which a pass is invalid
	Runs            int           // measured passes per scenario
}

// Preset returns rig timing parameters by name: "ci" keeps the whole
// suite around a minute for the regression gate; "full" runs longer
// passes for stabler numbers when recording a baseline worth publishing.
func Preset(name string) (Rig, error) {
	switch name {
	case "ci":
		return Rig{
			PassDuration:    900 * time.Millisecond,
			WarmupDuration:  300 * time.Millisecond,
			MinPassDuration: 250 * time.Millisecond,
			Runs:            3,
		}, nil
	case "full":
		return Rig{
			PassDuration:    3 * time.Second,
			WarmupDuration:  time.Second,
			MinPassDuration: time.Second,
			Runs:            3,
		}, nil
	default:
		return Rig{}, fmt.Errorf("unknown preset %q (want ci or full)", name)
	}
}

func (r *Rig) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// RunSuite runs every scenario and collects results in order.
func (r *Rig) RunSuite(ctx context.Context, scenarios []Scenario) ([]ScenarioResult, error) {
	results := make([]ScenarioResult, 0, len(scenarios))
	for _, sc := range scenarios {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := r.RunScenario(ctx, sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// passOutcome is one pass's raw numbers before peak selection.
type passOutcome struct {
	counts  Counts
	ops     int64 // operations counted toward throughput (Ok + OpsClasses)
	elapsed time.Duration
	batch   map[string]serve.BatchSnapshot
	stages  map[string]obs.StageStats
}

func (p passOutcome) throughput() float64 {
	if p.elapsed <= 0 {
		return 0
	}
	return float64(p.ops) / p.elapsed.Seconds()
}

// RunScenario runs one warm-up pass plus r.Runs measured passes and
// reports the peak pass.
func (r *Rig) RunScenario(ctx context.Context, sc Scenario) (ScenarioResult, error) {
	var zero ScenarioResult
	if r.Runs <= 0 {
		return zero, fmt.Errorf("rig: Runs must be positive")
	}
	r.logf("scenario %s: warmup %v + %d x %v", sc.Name, r.WarmupDuration, r.Runs, r.PassDuration)
	if r.WarmupDuration > 0 {
		if _, err := r.runPass(ctx, sc, r.WarmupDuration); err != nil {
			return zero, fmt.Errorf("warmup: %w", err)
		}
	}
	passes := make([]passOutcome, 0, r.Runs)
	for i := 0; i < r.Runs; i++ {
		p, err := r.runPass(ctx, sc, r.PassDuration)
		if err != nil {
			return zero, fmt.Errorf("pass %d: %w", i+1, err)
		}
		// Noise guards: a pass that ran shorter than the floor, or that
		// completed nothing, cannot produce a throughput worth gating on.
		if p.elapsed < r.MinPassDuration {
			return zero, fmt.Errorf("pass %d ran %v, below the %v floor", i+1, p.elapsed, r.MinPassDuration)
		}
		if p.counts.Ok == 0 {
			return zero, fmt.Errorf("pass %d completed zero successful operations (%d errors: %v)",
				i+1, p.counts.Errors, p.counts.ByClass)
		}
		r.logf("scenario %s pass %d: %.0f %s, p99 %.2f ms, %d errors",
			sc.Name, i+1, p.throughput(), sc.Unit, p.counts.Latency.P99, p.counts.Errors)
		passes = append(passes, p)
	}

	// Peak pass by throughput (see the package comment on why peak, not
	// median, under interference noise).
	best := passes[0]
	for _, p := range passes[1:] {
		if p.throughput() > best.throughput() {
			best = p
		}
	}

	res := ScenarioResult{
		Name:         sc.Name,
		Description:  sc.Description,
		Concurrency:  sc.Concurrency,
		Unit:         sc.Unit,
		ElapsedSec:   best.elapsed.Seconds(),
		Ok:           best.counts.Ok,
		Errors:       best.counts.Errors,
		ErrorClasses: best.counts.ByClass,
		Throughput:   best.throughput(),
		LatencyMs:    best.counts.Latency,
	}
	for _, p := range passes {
		res.RunThroughputs = append(res.RunThroughputs, p.throughput())
	}
	if len(sc.Kinds) > 0 {
		res.Batch = make(map[string]BatchReport, len(sc.Kinds))
		for _, kind := range sc.Kinds {
			res.Batch[kind] = batchReport(best.batch[kind])
		}
	}
	if len(best.stages) > 0 {
		res.Stages = make(map[string]StageReport, len(best.stages))
		for stage, st := range best.stages {
			res.Stages[stage] = stageReport(st)
		}
	}
	return res, nil
}

// stageShadowWiFi stages a shadow generation of the first fp64 WiFi
// model: identical weights under a fresh lifecycle state, so the
// shadow-mirror scenario measures pure mirroring overhead — the
// sampled re-submit, the extra coalesced passes, the divergence
// accounting — with zero model-cost difference between generations.
func stageShadowWiFi(reg *serve.Registry) error {
	for _, info := range reg.List() {
		if info.Kind != "wifi" || info.Precision == "int8" {
			continue
		}
		m, ok := reg.Get(info.Name)
		if !ok {
			continue
		}
		return reg.AddStaged(&serve.Model{Name: m.Name, Kind: m.Kind, WiFi: m.WiFi}, serve.StageShadow)
	}
	return fmt.Errorf("no fp64 wifi model to stage a shadow of")
}

// runPass boots a fresh server, drives the scenario for dur, and tears
// everything down.
func (r *Rig) runPass(ctx context.Context, sc Scenario, dur time.Duration) (passOutcome, error) {
	var zero passOutcome
	reg, err := r.NewRegistry()
	if err != nil {
		return zero, fmt.Errorf("loading models: %w", err)
	}
	if sc.Engine.ShadowWiFi {
		if err := stageShadowWiFi(reg); err != nil {
			return zero, err
		}
	}
	cfg := serve.Config{
		Registry:    reg,
		BatchWindow: sc.Engine.BatchWindow,
		MaxBatch:    sc.Engine.MaxBatch,
		NoTrace:     sc.Engine.NoTrace || r.NoTrace,
		MirrorRate:  sc.Engine.MirrorRate,
	}

	passCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Durable-session scenarios journal into a throwaway WAL dir with
	// the production interval-fsync policy.
	var walDir string
	if sc.Engine.Journal {
		walDir, err = os.MkdirTemp("", "noble-perf-wal-")
		if err != nil {
			return zero, err
		}
		defer os.RemoveAll(walDir)
		journal, err := store.Open(store.Config{
			Dir:          walDir,
			Fsync:        store.FsyncInterval,
			SyncInterval: 100 * time.Millisecond,
			Logf:         func(string, ...any) {}, // journal chatter is not a perf result
		})
		if err != nil {
			return zero, fmt.Errorf("opening pass journal: %w", err)
		}
		defer journal.Close()
		if _, err := journal.Recover(); err != nil {
			return zero, fmt.Errorf("recovering fresh journal: %w", err)
		}
		go journal.Run(passCtx)
		cfg.Journal = journal
	}

	engine := serve.NewEngine(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return zero, err
	}
	httpSrv := &http.Server{Handler: serve.NewServer(engine).Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	rec := NewRecorder()
	c := client.New("http://"+ln.Addr().String(),
		client.WithRetries(0, 0), // measure the server as it is
		client.WithFastTransport(),
		client.WithRequestHook(rec.Hook()),
	)
	models, err := c.Models(passCtx)
	if err != nil {
		return zero, fmt.Errorf("listing models: %w", err)
	}
	env := &Env{
		Ctx:         passCtx,
		Client:      c,
		Rec:         rec,
		Seed:        r.Seed,
		Concurrency: sc.Concurrency,
		deadline:    time.Now().Add(dur),
	}
	for _, m := range models {
		// A model with no precision field (an old server) is fp64: the
		// int8 tier always reports itself.
		int8 := m.Precision == "int8"
		switch {
		case m.Kind == "wifi" && !int8 && env.WiFi.Name == "":
			env.WiFi = m
		case m.Kind == "imu" && !int8 && env.IMU.Name == "":
			env.IMU = m
		case m.Kind == "wifi" && int8 && env.WiFiInt8.Name == "":
			env.WiFiInt8 = m
		case m.Kind == "imu" && int8 && env.IMUInt8.Name == "":
			env.IMUInt8 = m
		}
	}
	if env.WiFi.Name == "" || env.IMU.Name == "" {
		return zero, fmt.Errorf("need one fp64 wifi and one fp64 imu model, have %+v", models)
	}
	if sc.NeedsInt8 && (env.WiFiInt8.Name == "" || env.IMUInt8.Name == "") {
		return zero, fmt.Errorf("scenario needs int8 models but the registry has none (have %+v)", models)
	}

	rec.Arm()
	start := time.Now()
	runErr := sc.Run(env)
	elapsed := time.Since(start)
	rec.Disarm()
	if runErr != nil {
		return zero, runErr
	}

	out := passOutcome{counts: rec.Snapshot(), elapsed: elapsed}
	out.ops = out.counts.Ok
	for _, class := range sc.OpsClasses {
		out.ops += out.counts.ByClass[class]
	}
	if len(sc.Kinds) > 0 {
		out.batch = make(map[string]serve.BatchSnapshot, len(sc.Kinds))
		for _, kind := range sc.Kinds {
			// Fresh engine per pass, so the snapshot IS the pass delta.
			out.batch[kind] = engine.BatchSnapshot(kind)
		}
	}
	if t := engine.Tracer(); t != nil {
		// Same fresh-engine argument: the tracer saw only this pass, so
		// its per-stage histograms are the pass's latency attribution.
		out.stages = t.StageSnapshot()
	}
	return out, nil
}
