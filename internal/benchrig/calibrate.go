package benchrig

import (
	"sync/atomic"
	"time"
)

// Calibrate measures the machine's effective compute speed with a fixed
// reference kernel and returns it in MFLOP/s. The result is stored in
// BENCH.json (HostInfo.CalibrationMflops) and lets the gate normalize a
// comparison for machine-speed drift: shared runners and containers can
// be tens of percent faster or slower from one hour to the next, which
// would read as phantom regressions (or mask real ones) at absolute
// thresholds.
//
// The kernel is deliberately NOT the code under test — a plain scalar
// matmul defined right here. A change to the serving stack, the mat
// package's GEMM kernels, or the models moves the scenarios but not the
// calibration, so normalization cannot swallow a real code regression;
// only the machine moves both.
//
// It runs SINGLE-threaded on purpose: the ratio of two calibrations must
// mean "how fast is one core here vs there", independent of core count.
// A per-GOMAXPROCS aggregate would scale a 1-CPU baseline by ~Nx on an
// N-core runner and demand the impossible from single-threaded scenarios
// like cold_localize. Core-count differences are visible separately via
// HostInfo.NumCPU (the gate report notes shape mismatches); extra cores
// only ever make scenarios faster, which the gate never fails on.
func Calibrate() float64 {
	const (
		n    = 96                     // matrix edge; ~1.8 MFLOP per pass
		dur  = 300 * time.Millisecond // measurement window
		warm = 2                      // discarded passes
	)
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		b[i] = float64(i%5) * 0.5
	}
	var flops int64
	var start time.Time
	deadline := time.Now().Add(dur) // replaced when the real clock starts
	for pass := 0; pass < warm || time.Now().Before(deadline); pass++ {
		if pass == warm {
			// The clock starts after warm-up, before this pass's work, and
			// the divisor below is the ACTUAL elapsed time — so neither the
			// warm-up boundary pass nor the final pass's overshoot of the
			// deadline inflates the result (on a slow machine a single
			// pass is a visible fraction of the window).
			start = time.Now()
			deadline = start.Add(dur)
		}
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				aik := a[i*n+k]
				for j := 0; j < n; j++ {
					c[i*n+j] += aik * b[k*n+j]
				}
			}
		}
		if pass >= warm {
			flops += 2 * n * n * n
		}
	}
	sink.Store(int64(c[0])) // defeat dead-code elimination
	return float64(flops) / time.Since(start).Seconds() / 1e6
}

var sink atomic.Int64
