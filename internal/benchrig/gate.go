package benchrig

import (
	"fmt"
	"io"
)

// GateConfig sets the regression thresholds ci/perf-gate.sh enforces.
type GateConfig struct {
	// MaxThroughputDrop fails a scenario whose throughput fell by more
	// than this fraction of the baseline (0.15 = 15%).
	MaxThroughputDrop float64
	// MaxP99Inflation fails a scenario whose p99 latency grew by more
	// than this fraction over the baseline (0.25 = 25%).
	MaxP99Inflation float64
	// P99FloorMs guards the latency check against sub-floor jitter: the
	// baseline p99 is taken as at least this many milliseconds, and a
	// current p99 still under the floor never fails. Without it a 0.04 ms
	// → 0.06 ms wobble — scheduler noise, not a regression — reads as
	// +50%.
	P99FloorMs float64
}

// DefaultGate is the thresholds the CI gate runs with.
func DefaultGate() GateConfig {
	return GateConfig{MaxThroughputDrop: 0.15, MaxP99Inflation: 0.25, P99FloorMs: 0.25}
}

// Finding is one gate violation.
type Finding struct {
	Scenario string
	Check    string // "missing", "throughput", "p99"
	Detail   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s [%s]: %s", f.Scenario, f.Check, f.Detail)
}

// speedRatio separates machine drift from code regressions: both
// reports carry a reference-kernel calibration (see Calibrate), and
// their ratio estimates how much faster or slower THIS machine is right
// now than the machine/moment the baseline was recorded on.
//
// The ratio is capped at 1: it only ever RELAXES thresholds (a slower
// machine gets a proportionally lower throughput bar and higher p99
// allowance), never tightens them. Scenario numbers are not linear in
// CPU speed — much of a batched scenario's latency is the fixed 2 ms
// coalescing window, and a sequential scenario's throughput is bounded
// by waits, not compute — so demanding speed-times-baseline from a
// faster runner would fail window-bound scenarios with zero code
// change. A faster machine simply has to meet the baseline at face
// value. The floor clamp keeps a corrupt calibration from scaling a
// real regression away entirely.
func speedRatio(current, baseline *Bench) float64 {
	c, b := current.Host.CalibrationMflops, baseline.Host.CalibrationMflops
	if c <= 0 || b <= 0 {
		return 1 // pre-calibration reports compare at face value
	}
	r := c / b
	if r < 0.25 {
		r = 0.25
	}
	if r > 1 {
		r = 1
	}
	return r
}

// Gate compares a fresh run against a baseline and returns every
// violation (empty = pass). Baseline numbers are first normalized for
// machine speed via the calibration ratio. Scenarios present only in
// the current run are fine — new coverage never fails the gate;
// scenarios missing from the current run fail, so coverage cannot
// silently shrink.
func Gate(current, baseline *Bench, cfg GateConfig) []Finding {
	speed := speedRatio(current, baseline)
	var findings []Finding
	for _, base := range baseline.Scenarios {
		cur, ok := current.Scenario(base.Name)
		if !ok {
			findings = append(findings, Finding{
				Scenario: base.Name, Check: "missing",
				Detail: "scenario in baseline but absent from the current run",
			})
			continue
		}
		// A machine running at speed×baseline should reproduce
		// speed×throughput and p99/speed before any code change.
		adjTput := base.Throughput * speed
		if floor := adjTput * (1 - cfg.MaxThroughputDrop); cur.Throughput < floor {
			findings = append(findings, Finding{
				Scenario: base.Name, Check: "throughput",
				Detail: fmt.Sprintf("%.1f %s vs baseline %.1f (speed-adjusted %.1f; -%.1f%%, limit -%.0f%%)",
					cur.Throughput, cur.Unit, base.Throughput, adjTput,
					(1-cur.Throughput/adjTput)*100, cfg.MaxThroughputDrop*100),
			})
		}
		// The floor makes the second factor of the limit at least
		// P99FloorMs*(1+inflation), so sub-floor jitter can never trip it.
		adjP99 := base.LatencyMs.P99 / speed
		if adjP99 < cfg.P99FloorMs {
			adjP99 = cfg.P99FloorMs
		}
		if cur.LatencyMs.P99 > adjP99*(1+cfg.MaxP99Inflation) {
			findings = append(findings, Finding{
				Scenario: base.Name, Check: "p99",
				Detail: fmt.Sprintf("p99 %.2f ms vs baseline %.2f ms (speed-adjusted %.2f; limit +%.0f%% over max(adjusted, %.2f ms floor))",
					cur.LatencyMs.P99, base.LatencyMs.P99, adjP99, cfg.MaxP99Inflation*100, cfg.P99FloorMs),
			})
		}
	}
	return findings
}

// WriteGateReport renders the comparison for humans: one line per
// baseline scenario with deltas, then the verdict.
func WriteGateReport(w io.Writer, current, baseline *Bench, findings []Finding) {
	if !current.Host.SameShape(baseline.Host) {
		fmt.Fprintf(w, "note: baseline host %+v differs from this host %+v — comparing via calibration normalization; re-baseline on this machine if the gate misfires\n",
			baseline.Host, current.Host)
	}
	if speed := speedRatio(current, baseline); speed != 1 {
		fmt.Fprintf(w, "machine speed vs baseline: %.2fx (calibration %.0f vs %.0f MFLOP/s); baseline numbers speed-adjusted before thresholds\n",
			speed, current.Host.CalibrationMflops, baseline.Host.CalibrationMflops)
	}
	fmt.Fprintf(w, "%-26s %14s %14s %9s %10s %10s\n",
		"scenario", "baseline", "current", "delta", "p99 base", "p99 cur")
	for _, base := range baseline.Scenarios {
		cur, ok := current.Scenario(base.Name)
		if !ok {
			fmt.Fprintf(w, "%-26s %14.1f %14s\n", base.Name, base.Throughput, "MISSING")
			continue
		}
		delta := 0.0
		if base.Throughput > 0 {
			delta = (cur.Throughput/base.Throughput - 1) * 100
		}
		fmt.Fprintf(w, "%-26s %14.1f %14.1f %+8.1f%% %10.2f %10.2f\n",
			base.Name, base.Throughput, cur.Throughput, delta,
			base.LatencyMs.P99, cur.LatencyMs.P99)
	}
	if len(findings) == 0 {
		fmt.Fprintln(w, "gate: PASS")
		return
	}
	fmt.Fprintf(w, "gate: FAIL (%d violation(s))\n", len(findings))
	for _, f := range findings {
		fmt.Fprintf(w, "  %s\n", f)
	}
}
