// Package a exercises metriclabels: label/kind strings reaching metric
// sinks must be provably bounded — literals, constants, or values that
// only ever flow from them through in-package parameters and fields.
package a

import (
	"context"
	"net/http"

	"obs"
)

type Metrics struct{}

func (m *Metrics) Observe(endpoint string, code int)   { _, _ = endpoint, code }
func (m *Metrics) ObserveBatch(kind string, n int)     { _, _ = kind, n }
func (m *Metrics) ObserveBatchDrop(kind string, n int) { _, _ = kind, n }
func (m *Metrics) registerBatchKind(kind string)       { _ = kind }

const kindTrack = "track"

type batcher struct {
	kind string
	m    *Metrics
}

func newBatcher(kind string, m *Metrics) *batcher {
	m.registerBatchKind(kind) // bounded: both newBatcher call sites pass constants
	return &batcher{kind: kind, m: m}
}

func (b *batcher) flush(n int) {
	b.m.ObserveBatch(b.kind, n) // bounded through the field
}

func wire(m *Metrics) {
	_ = newBatcher("localize", m)
	_ = newBatcher(kindTrack, m)
}

func instrument(m *Metrics, name string) {
	m.Observe(name, 200) // bounded: every instrument call site is a literal
	m.Observe("pre_"+name, 200)
}

func routes(m *Metrics) {
	instrument(m, "localize")
	instrument(m, "health_"+kindTrack)
}

func stages(ctx context.Context, m *Metrics) {
	s := obs.Begin(ctx, obs.StageDecode)
	s.End()
}

func requestDerived(m *Metrics, r *http.Request) {
	m.Observe(r.URL.Path, 200) // want `unbounded metric label reaches Observe`
}

func launders(m *Metrics, label string) {
	m.ObserveBatchDrop(label, 1) // want `unbounded metric label reaches ObserveBatchDrop`
}

func laundersCaller(m *Metrics, r *http.Request) {
	launders(m, r.Host)
}

func unboundedStage(ctx context.Context, name string) {
	s := obs.Begin(ctx, name) // want `unbounded metric label reaches Begin`
	s.End()
}

func unboundedStageCaller(ctx context.Context, r *http.Request) {
	unboundedStage(ctx, r.URL.Path)
}

func suppressed(m *Metrics, r *http.Request) {
	//vet:ignore metriclabels -- fixture: the path set is a fixed route table upstream
	m.Observe(r.URL.Path, 200)
}
