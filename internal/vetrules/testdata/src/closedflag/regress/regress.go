// Package regress reconstructs the PR-6 walShard resurrection bug: a
// CompactJournal in flight at shutdown rotated the WAL after Close and
// reopened segment files on a closed journal, leaking an open file
// past process teardown. The fix gave walShard a closed flag checked
// on the rotation path; this fixture preserves the unchecked shape so
// noble-vet keeps refusing it.
package regress

import "os"

type walShard struct {
	closed bool
	f      *os.File
	seq    int64
}

func (sh *walShard) Close() error {
	sh.closed = true
	f := sh.f
	sh.f = nil
	if f != nil {
		return f.Close()
	}
	return nil
}

// rotate is the resurrection: it reopens the next segment with no
// closed check, so a compaction racing Close re-creates segment files
// on a journal that has already torn down.
func (sh *walShard) rotate() error {
	sh.seq++
	f, err := os.Create("wal.log")
	if err != nil {
		return err
	}
	sh.f = f // want `walShard\.rotate assigns sh\.f without first checking the "closed" guard`
	return nil
}
