// Package a exercises closedflag: guarded types must check their
// closed/draining flag before re-materialising live state.
package a

import (
	"os"
	"sync/atomic"
)

type shard struct {
	closed bool
	f      *os.File
	buf    []byte
}

func (sh *shard) openChecked(path string) error {
	if sh.closed {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sh.f = f
	return nil
}

func (sh *shard) teardown() {
	sh.closed = true // assigning the guard itself is exempt
	sh.f = nil       // nil teardown is exempt
}

func (sh *shard) grow() {
	sh.buf = append(sh.buf, 0) // slices are not runtime handles: exempt
}

func (sh *shard) openUnchecked(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sh.f = f // want `shard\.openUnchecked assigns sh\.f without first checking the "closed" guard`
	return nil
}

type drainer struct {
	draining atomic.Bool
	onFlush  func()
}

func (d *drainer) setChecked(fn func()) {
	if d.draining.Load() {
		return
	}
	d.onFlush = fn
}

func (d *drainer) setUnchecked(fn func()) {
	d.onFlush = fn // want `drainer\.setUnchecked assigns d\.onFlush without first checking the "draining" guard`
}

func (d *drainer) setSuppressed(fn func()) {
	//vet:ignore closedflag -- fixture: construction-time wiring before the type is published
	d.onFlush = fn
}
