// Package a exercises stagegate: fields of a //vet:stagegate-marked
// type may only be assigned inside a //vet:stagegate-transition
// function.
package a

import "time"

// Stage is the gated state machine.
//
//vet:stagegate
type Stage string

const (
	StageShadow Stage = "shadow"
	StageActive Stage = "active"
)

// Loud is an unrelated named string type: never gated.
type Loud string

type Model struct {
	Stage      Stage
	StageSince time.Time
	// TargetStage is config, not live state.
	//
	//vet:stagegate-exempt
	TargetStage Stage
	Noise       Loud
}

// applyStage is the single blessed mutation point.
//
//vet:stagegate-transition
func applyStage(m *Model, to Stage, now time.Time) {
	m.Stage = to
	m.StageSince = now
}

func promote(m *Model) {
	applyStage(m, StageActive, time.Now())
}

func sneakySwap(m *Model) {
	m.Stage = StageActive // want `Model\.Stage is a Stage stage field: assign it only inside the //vet:stagegate-transition function`
}

func sneakyMulti(a, b *Model) {
	a.Stage, b.Stage = StageShadow, StageActive // want `Model\.Stage is a Stage stage field` `Model\.Stage is a Stage stage field`
}

func configure(m *Model) {
	m.TargetStage = StageActive // exempt: marked config field
	m.Noise = "fine"            // unrelated type
}

func locals() Stage {
	var s Stage
	s = StageShadow // local variable, not a field
	return s
}

// snapshot construction reads state; composite literals are not
// transitions.
func snapshot(m *Model) Model {
	return Model{Stage: m.Stage, TargetStage: m.TargetStage}
}
