// Package a exercises journalock: journal sinks must be dominated by a
// Session.Lock in the same function, carry the documented convention,
// or be journaling helpers themselves.
package a

import "sync"

type Session struct{ mu sync.Mutex }

func (s *Session) Lock()         { s.mu.Lock() }
func (s *Session) TryLock() bool { return s.mu.TryLock() }
func (s *Session) Unlock()       { s.mu.Unlock() }

type Journal struct{}

func (j *Journal) Append(ev int) error { _ = ev; return nil }

type Engine struct{ journal *Journal }

// journalAppend is a journaling helper: its own Journal.Append inherits
// the helper-chain exemption, while calls TO it are checked.
func (e *Engine) journalAppend(s *Session, ev int) { _ = s; _ = e.journal.Append(ev) }

func (e *Engine) lockedDirect(s *Session) {
	s.Lock()
	defer s.Unlock()
	e.journalAppend(s, 1)
}

func (e *Engine) lockedInClosure(s *Session) {
	func() {
		s.Lock()
		defer s.Unlock()
		e.journalAppend(s, 1)
	}()
}

func (e *Engine) tryLocked(s *Session) {
	if !s.TryLock() {
		return
	}
	defer s.Unlock()
	_ = e.journal.Append(2)
}

// flushSteps journals one batch. Caller holds the session lock.
func (e *Engine) flushSteps(s *Session) { e.journalAppend(s, 3) }

func (e *Engine) unlockedHelper(s *Session) {
	e.journalAppend(s, 4) // want `journalAppend without a preceding Session\.Lock`
}

func (e *Engine) unlockedDirect(s *Session) {
	_ = s
	_ = e.journal.Append(5) // want `Journal\.Append without a preceding Session\.Lock`
}

func (e *Engine) suppressed(s *Session) {
	//vet:ignore journalock -- fixture: this path is single-writer by construction
	e.journalAppend(s, 6)
}
