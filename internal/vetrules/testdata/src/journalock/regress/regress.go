// Package regress reconstructs the PR-5 seq-1 durability bug: the
// session-create path journaled the create record inside the
// store-init closure BEFORE the session lock was taken, so with
// -fsync=always a racing append could commit (and fsync) ahead of the
// create record it depends on. The PR-6 fix moved the Lock inside the
// closure, before the append; this fixture preserves the broken shape
// so noble-vet keeps refusing it.
package regress

type Session struct{ seq int64 }

func (s *Session) Lock()   {}
func (s *Session) Unlock() {}

func (s *Session) NextSeq() int64 { s.seq++; return s.seq }

type Journal struct{}

func (j *Journal) Append(ev int) error { _ = ev; return nil }

type Engine struct{ journal *Journal }

func (e *Engine) getOrCreate(id string, create func() *Session) *Session {
	_ = id
	return create()
}

// AppendSegments mirrors the buggy create path: the create record is
// appended pre-publication but outside the lock, then the lock is
// taken only for the step appends that follow.
func (e *Engine) AppendSegments(id string) {
	s := e.getOrCreate(id, func() *Session {
		ns := &Session{}
		_ = e.journal.Append(1) // want `Journal\.Append without a preceding Session\.Lock`
		return ns
	})
	s.Lock()
	defer s.Unlock()
	_ = e.journal.Append(2)
}
