// Package regress reconstructs the PR-2 BlockDense race: Forward
// cached its input for backprop unconditionally, so concurrent
// inference requests sharing the layer raced on b.x (caught by -race
// under batched /v1/localize load; fixed by gating the cache on
// train). This fixture preserves the broken shape so noble-vet keeps
// refusing it.
package regress

type BlockDense struct {
	w [][]float64
	x []float64
}

func (b *BlockDense) Forward(x []float64, train bool) []float64 {
	b.x = x // want `receiver write in Forward outside a train guard`
	out := make([]float64, len(b.w))
	for i, row := range b.w {
		s := 0.0
		for j, wv := range row {
			if j < len(x) {
				s += wv * x[j]
			}
		}
		out[i] = s
	}
	return out
}
