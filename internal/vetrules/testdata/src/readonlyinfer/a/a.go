// Package a exercises readonlyinfer: Forward writes are train-gated
// (either guard style), Predict entry points are read-only.
package a

type Dense struct {
	w []float64
	x []float64
}

// Forward gates its activation cache with the block style.
func (d *Dense) Forward(x []float64, train bool) []float64 {
	if train {
		d.x = x
	}
	out := make([]float64, len(d.w))
	return out
}

type BatchNorm struct {
	std  []float64
	runs int
}

// Forward gates with the early-return style: everything after the
// !train return is training-only.
func (bn *BatchNorm) Forward(x []float64, train bool) []float64 {
	if !train {
		return x
	}
	bn.std = x
	bn.runs++
	return x
}

type Leaky struct{ cache []float64 }

func (l *Leaky) Forward(x []float64, train bool) []float64 {
	l.cache = x // want `receiver write in Forward outside a train guard`
	return x
}

type Model struct {
	hits  int
	cache map[string]int
}

func (m *Model) PredictBatch(x [][]float64) int {
	m.hits++ // want `receiver write in PredictBatch`
	return m.hits
}

func (m *Model) PredictMemo(key string) int {
	m.cache[key] = 1 // want `receiver write in PredictMemo`
	return m.cache[key]
}

func (m *Model) PredictClean(x [][]float64) int {
	local := m.hits
	local++
	return local
}

func (m *Model) PredictSuppressed() int {
	//vet:ignore readonlyinfer -- fixture: counter is atomic in the real type
	m.hits++
	return m.hits
}

// QDense is the quantized inference-layer shape: a single-parameter
// Forward with no train mode. Scratch in locals is fine.
type QDense struct {
	w     []float64
	scale float64
}

func (q *QDense) Forward(x []float64) []float64 {
	acc := make([]float64, len(q.w))
	for i, wv := range q.w {
		if i < len(x) {
			acc[i] = wv * x[i] * q.scale
		}
	}
	return acc
}

// QCached caches its activation on the receiver — the race the
// quantized tier must never reintroduce.
type QCached struct {
	w    []float64
	last []float64
}

func (q *QCached) Forward(x []float64) []float64 {
	q.last = x // want `receiver write in single-parameter Forward`
	return q.last
}

// MSE is the loss shape: two parameters, so the Backward cache is
// legitimate training state and must NOT be flagged.
type MSE struct{ diff []float64 }

func (l *MSE) Forward(pred, target []float64) float64 {
	l.diff = make([]float64, len(pred))
	s := 0.0
	for i := range pred {
		l.diff[i] = pred[i] - target[i]
		s += l.diff[i] * l.diff[i]
	}
	return s
}
