// Package a exercises spanhygiene: spans end on every return path, and
// tracer APIs never get a fresh background context.
package a

import (
	"context"
	"time"

	"obs"
)

func deferred(ctx context.Context) {
	s := obs.Begin(ctx, obs.StageDecode)
	defer s.End()
	if time.Now().IsZero() {
		return
	}
}

func endedOnEveryPath(ctx context.Context) error {
	s := obs.Begin(ctx, obs.StageDecode)
	if time.Now().IsZero() {
		s.End()
		return nil
	}
	s.End()
	return nil
}

func endedBeforeLaterReturns(ctx context.Context) error {
	s := obs.Begin(ctx, obs.StageDecode)
	ok := time.Now().IsZero()
	s.End()
	if ok {
		return nil
	}
	return nil
}

func closureReturnsAreNotOurs(ctx context.Context) {
	s := obs.Begin(ctx, obs.StageDecode)
	f := func() {
		return
	}
	f()
	s.End()
}

func leaky(ctx context.Context) error {
	s := obs.Begin(ctx, obs.StageDecode)
	if time.Now().IsZero() {
		return nil // want `return leaks span s`
	}
	s.End()
	return nil
}

func neverEnded(ctx context.Context) {
	s := obs.Begin(ctx, obs.StageEncode) // want `span s from obs\.Begin is never ended`
	_ = s
}

func detachedAdd() {
	now := time.Now()
	obs.AddSpan(context.Background(), obs.StageDecode, now, now) // want `obs\.AddSpan called with context\.Background`
}

func detachedBegin() {
	s := obs.Begin(context.TODO(), obs.StageDecode) // want `obs\.Begin called with context\.TODO`
	s.End()
}

func suppressedLeak(ctx context.Context) error {
	s := obs.Begin(ctx, obs.StageDecode)
	if time.Now().IsZero() {
		//vet:ignore spanhygiene -- fixture: this path aborts the trace on purpose
		return nil
	}
	s.End()
	return nil
}
