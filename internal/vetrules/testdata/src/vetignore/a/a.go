// Package a exercises the suppression directive itself: a directive
// without a justification is malformed (and suppresses nothing), and a
// directive whose analyzer never fires on its line is stale and must
// be deleted.
package a

type M struct{ n int }

func (m *M) PredictMalformed() {
	//vet:ignore readonlyinfer // want `malformed //vet:ignore`
	m.n = 1 // want `receiver write in PredictMalformed`
}

func (m *M) helper() {
	//vet:ignore readonlyinfer -- helper is not an inference path, nothing fires here // want `unused //vet:ignore`
	m.n = 2
}

func (m *M) PredictSuppressed() {
	//vet:ignore readonlyinfer -- fixture: deliberate suppressed write
	m.n = 3
}
