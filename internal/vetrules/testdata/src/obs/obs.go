// Package obs is a minimal stand-in for noble/internal/obs so span
// fixtures resolve: the analyzers match tracer APIs by package name,
// and this package intentionally mirrors the real signatures.
package obs

import (
	"context"
	"time"
)

// ActiveSpan mirrors the real tracer's span handle. Its presence also
// exercises spanhygiene's self-scoping: this package is skipped.
type ActiveSpan struct{}

// End closes the span.
func (ActiveSpan) End() {}

// Stage names, a bounded set as in the real package.
const (
	StageDecode = "decode"
	StageEncode = "encode"
)

// Begin opens a span on the trace carried by ctx.
func Begin(ctx context.Context, stage string) ActiveSpan { _ = ctx; _ = stage; return ActiveSpan{} }

// AddSpan records a completed stage interval.
func AddSpan(ctx context.Context, stage string, start, end time.Time) {
	_, _, _, _ = ctx, stage, start, end
}

// AddBatchSpan records a shared batch-pass interval.
func AddBatchSpan(ctx context.Context, kind string, rows int, start, end time.Time) {
	_, _, _, _, _ = ctx, kind, rows, start, end
}

// With attaches a new trace to ctx.
func With(ctx context.Context) context.Context { return ctx }

// SetRequestID stamps the trace in ctx.
func SetRequestID(ctx context.Context, id string) { _, _ = ctx, id }
