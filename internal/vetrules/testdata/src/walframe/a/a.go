// Package a exercises walframe's CRC-coverage rule: little-endian
// writes into record buffers happen either next to the framing CRC or
// on a marked codec type.
package a

import (
	"encoding/binary"
	"hash/crc32"
)

const (
	walMagic  = "NOBWAL01"
	snapMagic = "NOBSNP01"
)

// enc builds payloads that are always framed by the caller.
//
//vet:walframe-codec
type enc struct{ b []byte }

func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

func frame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// readFrame only reads; Uint* accessors are not writes.
func readFrame(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b)
}

func sneakWrite(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v) // want `binary\.LittleEndian\.AppendUint64 outside the framing CRC`
}

func sneakPut(buf []byte, v uint32) {
	binary.LittleEndian.PutUint32(buf, v) // want `binary\.LittleEndian\.PutUint32 outside the framing CRC`
}

func suppressedWrite(buf []byte, v uint32) {
	//vet:ignore walframe -- fixture: scratch buffer that never reaches disk
	binary.LittleEndian.PutUint32(buf, v)
}
