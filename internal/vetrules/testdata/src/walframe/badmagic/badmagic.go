// Package badmagic exercises walframe's version-constant pinning:
// magics keep their pinned values, stay 8 bytes, and never collide.
package badmagic

const (
	walMagic   = "NOBWAL99" // want `file magic walMagic redefined to "NOBWAL99" \(pinned "NOBWAL01"\)`
	snapMagic  = "BAD"      // want `redefined to "BAD"` `is 3 bytes \(must be 8\)`
	crashMagic = "NOBWAL99" // want `file magics walMagic and crashMagic share the value "NOBWAL99"`
)
