// Package a exercises syncclose: in the durability layer (scoped by
// the file-magic constant), Close/Sync errors on written files must be
// checked — except the deferred double-close backstop ahead of a
// checked Close.
package a

import (
	"bufio"
	"os"
)

const walMagic = "NOBWAL01"

func writeChecked(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	err = func() error {
		if _, err := w.Write(b); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeBackstopped(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // licensed: the checked Close below runs on the success path
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Close()
}

func writeSloppy(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close() // want `statement discards the error from f\.Close`
		return err
	}
	_ = f.Sync() // want `blank assignment discards the error from f\.Sync`
	return nil
}

func writeDeferredOnly(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer discards the error from f\.Close`
	_, err = f.Write(b)
	return err
}

func readOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // read-only opens are exempt: a failed close loses nothing
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return make([]byte, st.Size()), nil
}

func writeSuppressed(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	//vet:ignore syncclose -- fixture: marker file, existence is the payload
	f.Close()
}
