// Package a exercises strictdecode: handlers decode through the
// blessed strict decoder and surface typed errors only.
package a

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// decodeStrict is the blessed strict decoder for this fixture.
//
//vet:strictdecode-impl
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	return dec.Decode(v) == nil
}

func handleGood(w http.ResponseWriter, r *http.Request) {
	var v struct{}
	if !decodeStrict(w, r, &v) {
		return
	}
}

func handleRawDecoder(w http.ResponseWriter, r *http.Request) {
	var v struct{}
	_ = json.NewDecoder(r.Body).Decode(&v) // want `raw json\.Decoder`
}

func handleReadAll(w http.ResponseWriter, r *http.Request) {
	_, _ = io.ReadAll(r.Body) // want `reads the raw request body`
}

func handleUntypedErrors(w http.ResponseWriter, r *http.Request) error {
	if r.ContentLength == 0 {
		return errors.New("empty") // want `constructs an untyped error`
	}
	return fmt.Errorf("bad request %q", r.URL.Path) // want `constructs an untyped error`
}

func handlePlainText(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `plain-text http\.Error`
}

func handleSuppressedFastPath(w http.ResponseWriter, r *http.Request) {
	//vet:ignore strictdecode -- fixture: fast path with the size cap enforced by MaxBytesReader
	body, _ := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	_ = body
}

// notAHandler has no ResponseWriter parameter, so raw reads are fine.
func notAHandler(r *http.Request) ([]byte, error) {
	return io.ReadAll(r.Body)
}
