package vetrules_test

import (
	"testing"

	"noble/internal/vetrules"
	"noble/internal/vetrules/analysis"
	"noble/internal/vetrules/vettest"
)

const srcRoot = "testdata/src"

func TestJournalock(t *testing.T) {
	vettest.Run(t, srcRoot, vetrules.Journalock, "journalock/a", "journalock/regress")
}

func TestClosedflag(t *testing.T) {
	vettest.Run(t, srcRoot, vetrules.Closedflag, "closedflag/a", "closedflag/regress")
}

func TestSpanhygiene(t *testing.T) {
	vettest.Run(t, srcRoot, vetrules.Spanhygiene, "spanhygiene/a")
}

func TestMetriclabels(t *testing.T) {
	vettest.Run(t, srcRoot, vetrules.Metriclabels, "metriclabels/a")
}

func TestStrictdecode(t *testing.T) {
	vettest.Run(t, srcRoot, vetrules.Strictdecode, "strictdecode/a")
}

func TestWalframe(t *testing.T) {
	vettest.Run(t, srcRoot, vetrules.Walframe, "walframe/a", "walframe/badmagic")
}

func TestSyncclose(t *testing.T) {
	vettest.Run(t, srcRoot, vetrules.Syncclose, "syncclose/a")
}

func TestReadonlyinfer(t *testing.T) {
	vettest.Run(t, srcRoot, vetrules.Readonlyinfer, "readonlyinfer/a", "readonlyinfer/regress")
}

func TestStagegate(t *testing.T) {
	vettest.Run(t, srcRoot, vetrules.Stagegate, "stagegate/a")
}

func TestVetIgnoreDirective(t *testing.T) {
	vettest.Run(t, srcRoot, vetrules.Readonlyinfer, "vetignore/a")
}

// TestHistoricalBugFixturesTripTheSuite is the acceptance gate for the
// three reconstructed production bugs: the full suite (exactly what
// `noble-vet <fixture-dir>` runs) must report at least one finding on
// each, so the bug classes stay machine-refused. ci/lint.sh asserts
// the same through the binary's exit code.
func TestHistoricalBugFixturesTripTheSuite(t *testing.T) {
	for _, fixture := range []string{
		"journalock/regress",    // PR-5: seq-1 create append escaping the session lock
		"closedflag/regress",    // PR-6: post-Close compaction resurrecting segments
		"readonlyinfer/regress", // PR-2: BlockDense inference-time write
	} {
		pkg, err := analysis.LoadFixture(srcRoot, fixture)
		if err != nil {
			t.Fatalf("loading %s: %v", fixture, err)
		}
		findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, vetrules.Suite())
		if err != nil {
			t.Fatalf("running suite on %s: %v", fixture, err)
		}
		if len(findings) == 0 {
			t.Errorf("%s: the reconstructed bug no longer trips any analyzer", fixture)
		}
	}
}

// TestSuiteNamesAreUnique guards the suppression syntax: //vet:ignore
// addresses analyzers by name.
func TestSuiteNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range vetrules.Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
