package vetrules

import (
	"go/ast"
	"go/types"

	"noble/internal/vetrules/analysis"
)

// strictDecodeImplMarker blesses the one function per protocol version
// that is allowed to touch the raw request body with a JSON decoder:
// the shared strict decoder itself. Everything else goes through it.
const strictDecodeImplMarker = "//vet:strictdecode-impl"

// Strictdecode pins the request-decoding discipline PR-2/PR-3
// established: handlers decode bodies through decodeStrict (size cap →
// 413, trailing-garbage and unknown-field rejection → 400, typed error
// envelope) and surface failures through the serve/errors.go code
// table. A handler that reaches for json.NewDecoder(r.Body),
// io.ReadAll(r.Body), fmt.Errorf, errors.New, or http.Error bypasses
// the size caps and emits errors no client can dispatch on.
//
// "Handler" means any function with an http.ResponseWriter parameter.
// The blessed decoder implementations carry //vet:strictdecode-impl in
// their doc comment.
var Strictdecode = &analysis.Analyzer{
	Name: "strictdecode",
	Doc: "HTTP handlers must decode request bodies via decodeStrict and map errors through the " +
		"typed error table — no raw json.Decoder/io.ReadAll on r.Body, no fmt.Errorf/errors.New/http.Error",
	Run: runStrictdecode,
}

func runStrictdecode(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if !hasResponseWriterParam(pass.TypesInfo, decl) {
				continue
			}
			if docHasDirective(decl.Doc, strictDecodeImplMarker) {
				continue
			}
			checkStrictdecodeFunc(pass, decl)
		}
	}
	return nil
}

func hasResponseWriterParam(info *types.Info, decl *ast.FuncDecl) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		if isNetHTTPType(info.TypeOf(field.Type), "ResponseWriter") {
			return true
		}
	}
	return false
}

func isNetHTTPType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func checkStrictdecodeFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isPkgCall(pass.TypesInfo, call, "json", "NewDecoder") && len(call.Args) == 1 &&
			mentionsRequestBody(pass.TypesInfo, call.Args[0]):
			pass.Reportf(call.Pos(),
				"handler %s decodes the request body with a raw json.Decoder: use decodeStrict "+
					"(size cap, unknown-field and trailing-garbage rejection, typed errors)",
				decl.Name.Name)
		case isPkgCall(pass.TypesInfo, call, "io", "ReadAll") && len(call.Args) == 1 &&
			mentionsRequestBody(pass.TypesInfo, call.Args[0]):
			pass.Reportf(call.Pos(),
				"handler %s reads the raw request body: use decodeStrict, or justify the "+
					"fast path with //vet:ignore strictdecode",
				decl.Name.Name)
		case isPkgCall(pass.TypesInfo, call, "fmt", "Errorf"),
			isPkgCall(pass.TypesInfo, call, "errors", "New"):
			pass.Reportf(call.Pos(),
				"handler %s constructs an untyped error: map failures through the serve/errors.go "+
					"code table (errf/AsError) so clients get a machine-readable code",
				decl.Name.Name)
		case isPkgCall(pass.TypesInfo, call, "http", "Error"):
			pass.Reportf(call.Pos(),
				"handler %s writes a plain-text http.Error: respond with the typed JSON error "+
					"envelope (fail/failEngine)",
				decl.Name.Name)
		}
		return true
	})
}

// mentionsRequestBody reports whether the expression tree contains a
// selector <expr>.Body where <expr> is an *http.Request.
func mentionsRequestBody(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Body" {
			return true
		}
		if isNetHTTPType(info.TypeOf(sel.X), "Request") {
			found = true
			return false
		}
		return true
	})
	return found
}
