package vetrules

import (
	"go/ast"
	"go/types"

	"noble/internal/vetrules/analysis"
)

// Metriclabels is /metrics cardinality protection. Prometheus-style
// label values become map keys and histogram families; feeding them
// request-derived strings (session IDs, model names from the wire,
// header values) grows the metrics endpoint without bound and is a
// memory-exhaustion vector. The analyzer checks that every label/kind
// string reaching a metrics or tracer sink is *bounded*: built from
// string literals and constants, possibly flowing through in-package
// parameters and struct fields whose writers are themselves all
// bounded (e.g. Batcher.kind, set once from a literal in NewEngine, or
// instrument's name parameter, bound in routes()).
//
// Sinks: Metrics.Observe / ObserveBatch / ObserveBatchDrop /
// registerBatchKind (label is argument 0) and obs.Begin / AddSpan /
// AddBatchSpan (stage/kind is argument 1 — the obs package makes a
// histogram per distinct stage name on first use).
var Metriclabels = &analysis.Analyzer{
	Name: "metriclabels",
	Doc: "metric label/kind strings passed to Metrics.Observe* or obs stage APIs must come from " +
		"a bounded constant set, never request-derived data",
	Run: runMetriclabels,
}

// metricsSinkArg maps method names on a receiver type named "Metrics"
// to the index of their label argument.
var metricsSinkArg = map[string]int{
	"Observe":           0,
	"ObserveBatch":      0,
	"ObserveBatchDrop":  0,
	"registerBatchKind": 0,
}

// obsSinkArg maps obs package functions to the index of their
// stage/kind argument.
var obsSinkArg = map[string]int{
	"Begin":        1,
	"AddSpan":      1,
	"AddBatchSpan": 1,
}

func runMetriclabels(pass *analysis.Pass) error {
	bc := newBoundChecker(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			idx := -1
			if i, ok := metricsSinkArg[sel.Sel.Name]; ok && exprTypeName(pass.TypesInfo, sel.X) == "Metrics" {
				idx = i
			} else if i, ok := obsSinkArg[sel.Sel.Name]; ok && isObsPkgSelector(pass, sel) {
				idx = i
			}
			if idx < 0 || idx >= len(call.Args) {
				return true
			}
			if !bc.bounded(call.Args[idx], 0) {
				pass.Reportf(call.Args[idx].Pos(),
					"unbounded metric label reaches %s: label/kind strings must derive from constants, "+
						"not request data (/metrics cardinality)",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// boundChecker decides whether a string expression can only ever hold
// values from a finite, compile-time-known set. The analysis is
// package-local and flow-insensitive: a parameter is bounded iff every
// in-package call site passes a bounded argument; a struct field is
// bounded iff every in-package write stores a bounded value.
type boundChecker struct {
	pass *analysis.Pass
	// memo holds per-object verdicts; an entry inserted as true before
	// recursion doubles as the cycle-breaker (a value defined only in
	// terms of itself has no unbounded source).
	memo     map[types.Object]bool
	assigns  []*ast.AssignStmt
	lits     []*ast.CompositeLit
	calls    []*ast.CallExpr
	paramIdx map[*types.Var]paramSlot
}

type paramSlot struct {
	fn  *types.Func
	idx int
}

const maxBoundDepth = 8

func newBoundChecker(pass *analysis.Pass) *boundChecker {
	bc := &boundChecker{
		pass:     pass,
		memo:     map[types.Object]bool{},
		paramIdx: map[*types.Var]paramSlot{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				bc.assigns = append(bc.assigns, n)
			case *ast.CompositeLit:
				bc.lits = append(bc.lits, n)
			case *ast.CallExpr:
				bc.calls = append(bc.calls, n)
			case *ast.FuncDecl:
				if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok && n.Type.Params != nil {
					i := 0
					for _, field := range n.Type.Params.List {
						for _, name := range field.Names {
							if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
								bc.paramIdx[v.Origin()] = paramSlot{fn.Origin(), i}
							}
							i++
						}
						if len(field.Names) == 0 {
							i++
						}
					}
				}
			}
			return true
		})
	}
	return bc
}

func (bc *boundChecker) bounded(e ast.Expr, depth int) bool {
	if depth > maxBoundDepth {
		return false
	}
	e = ast.Unparen(e)
	if tv, ok := bc.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true // constant expression of any shape
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		return bc.bounded(e.X, depth+1) && bc.bounded(e.Y, depth+1)
	case *ast.CallExpr:
		// string(...) conversions keep boundedness; real calls don't.
		if tv, ok := bc.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return bc.bounded(e.Args[0], depth+1)
		}
		return false
	case *ast.Ident:
		return bc.boundedObject(bc.pass.TypesInfo.ObjectOf(e), depth)
	case *ast.SelectorExpr:
		return bc.boundedObject(bc.pass.TypesInfo.ObjectOf(e.Sel), depth)
	}
	return false
}

func (bc *boundChecker) boundedObject(obj types.Object, depth int) bool {
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Const); ok {
		return true
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	v = v.Origin()
	if v.Pkg() != bc.pass.Pkg {
		// A field or variable declared elsewhere (r.URL.Path, an
		// imported package var): its writers are invisible to this
		// package-local analysis, so it cannot be proven bounded.
		return false
	}
	if verdict, ok := bc.memo[v]; ok {
		return verdict
	}
	bc.memo[v] = true // in-progress: break cycles optimistically
	var verdict bool
	switch {
	case v.IsField():
		verdict = bc.fieldBounded(v, depth)
	default:
		if slot, ok := bc.paramIdx[v]; ok {
			verdict = bc.paramBounded(slot, depth)
		} else {
			verdict = bc.localBounded(v, depth)
		}
	}
	bc.memo[v] = verdict
	return verdict
}

// fieldBounded: every in-package write to the field stores a bounded
// value — plain assignments and composite literals (keyed or
// positional). A field nobody writes holds only its zero value.
func (bc *boundChecker) fieldBounded(fld *types.Var, depth int) bool {
	for _, as := range bc.assigns {
		for i, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			w, ok := bc.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
			if !ok || w.Origin() != fld {
				continue
			}
			rhs := pairedRHS(as, i)
			if rhs == nil || !bc.bounded(rhs, depth+1) {
				return false
			}
		}
	}
	for _, lit := range bc.lits {
		st := litStruct(bc.pass.TypesInfo, lit)
		if st == nil {
			continue
		}
		for i, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				w, ok := bc.pass.TypesInfo.ObjectOf(key).(*types.Var)
				if !ok || w.Origin() != fld {
					continue
				}
				if !bc.bounded(kv.Value, depth+1) {
					return false
				}
			} else if i < st.NumFields() && st.Field(i).Origin() == fld {
				if !bc.bounded(elt, depth+1) {
					return false
				}
			}
		}
	}
	return true
}

// paramBounded: every in-package call site passes a bounded argument at
// the parameter's position. Zero visible call sites is vacuously
// bounded (the function may be exported; its other packages are
// analysed in their own pass).
func (bc *boundChecker) paramBounded(slot paramSlot, depth int) bool {
	for _, call := range bc.calls {
		fn := calleeFunc(bc.pass.TypesInfo, call)
		if fn == nil || fn != slot.fn {
			continue
		}
		if slot.idx >= len(call.Args) {
			continue // variadic tail not supplied
		}
		if call.Ellipsis.IsValid() && slot.idx == len(call.Args)-1 {
			return false // slice splat: contents unknowable here
		}
		if !bc.bounded(call.Args[slot.idx], depth+1) {
			return false
		}
	}
	return true
}

// localBounded: every assignment and initialiser of a local (or
// package-level) variable is bounded. A var with no visible writes and
// no initialiser is just "".
func (bc *boundChecker) localBounded(v *types.Var, depth int) bool {
	for _, as := range bc.assigns {
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			w, ok := bc.pass.TypesInfo.ObjectOf(id).(*types.Var)
			if !ok || w.Origin() != v {
				continue
			}
			rhs := pairedRHS(as, i)
			if rhs == nil || !bc.bounded(rhs, depth+1) {
				return false
			}
		}
	}
	for _, f := range bc.pass.Files {
		ok := true
		ast.Inspect(f, func(n ast.Node) bool {
			vs, isSpec := n.(*ast.ValueSpec)
			if !isSpec || !ok {
				return true
			}
			for i, name := range vs.Names {
				w, isVar := bc.pass.TypesInfo.Defs[name].(*types.Var)
				if !isVar || w.Origin() != v {
					continue
				}
				if len(vs.Values) == len(vs.Names) {
					if !bc.bounded(vs.Values[i], depth+1) {
						ok = false
					}
				} else if len(vs.Values) > 0 {
					ok = false // multi-value initialiser
				}
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

// litStruct resolves a composite literal to its struct type (through
// pointers and named types), or nil for slice/map/array literals.
func litStruct(info *types.Info, lit *ast.CompositeLit) *types.Struct {
	tv, ok := info.Types[lit]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}
