// Package vetrules holds noble-vet's custom analyzers: one per
// invariant this codebase has been burned by (or depends on for
// production safety). See docs/LINT.md for the catalogue and the
// suppression syntax, and internal/vetrules/analysis for the driver.
package vetrules

import (
	"go/ast"
	"go/types"
	"strings"

	"noble/internal/vetrules/analysis"
)

// Suite returns every noble-vet analyzer in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Journalock,
		Closedflag,
		Spanhygiene,
		Metriclabels,
		Strictdecode,
		Walframe,
		Syncclose,
		Readonlyinfer,
		Stagegate,
	}
}

// baseTypeName returns the name of t's named type after stripping
// pointers and aliases, or "" when t has no name (struct literals,
// builtins, type parameters).
func baseTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return ""
}

// exprTypeName is baseTypeName of e's type.
func exprTypeName(info *types.Info, e ast.Expr) string {
	return baseTypeName(info.TypeOf(e))
}

// recvTypeName returns the receiver base type name of a method decl,
// or "" for plain functions.
func recvTypeName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// docContains reports whether a decl's doc comment contains substr.
func docContains(doc *ast.CommentGroup, substr string) bool {
	return doc != nil && strings.Contains(doc.Text(), substr)
}

// docHasDirective reports whether the raw doc comment carries the given
// //-directive (CommentGroup.Text strips directive comments, so this
// scans the raw list).
func docHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes (generic
// instantiations folded to their origin), or nil for indirect calls,
// conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn.Origin()
	}
	return nil
}

// isPkgCall reports whether call is pkgName.funcName(...) for an
// imported package whose *package name* (not path) is pkgName.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgName, funcName string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Name() == pkgName
}

// declaresTypeNamed reports whether the package being analyzed declares
// a type with the given name (used for self-scoping: e.g. spanhygiene
// skips the package that implements ActiveSpan).
func declaresTypeNamed(pass *analysis.Pass, name string) bool {
	if pass.Pkg == nil {
		return false
	}
	obj := pass.Pkg.Scope().Lookup(name)
	_, ok := obj.(*types.TypeName)
	return ok
}

// typeDeclDoc collects the doc comment group for every type declared in
// the package's files, keyed by type name. Both the GenDecl doc and the
// TypeSpec doc are consulted (gofmt moves docs onto the GenDecl for
// single-spec declarations).
func typeDeclDoc(files []*ast.File) map[string]*ast.CommentGroup {
	docs := map[string]*ast.CommentGroup{}
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				docs[ts.Name.Name] = doc
			}
		}
	}
	return docs
}
