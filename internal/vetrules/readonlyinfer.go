package vetrules

import (
	"go/ast"
	"go/token"

	"noble/internal/vetrules/analysis"
)

// Readonlyinfer enforces the rule PR-2's BlockDense race taught us:
// inference paths are read-only. Model layers run concurrently for many
// requests over shared weights; a Forward that caches activations
// outside the training guard corrupts a neighbouring request's pass.
//
// Three checks:
//
//  1. In a method named Forward with a bool parameter named "train",
//     every write to a receiver field must be training-gated: inside an
//     `if` whose condition mentions train, or after an early
//     `if !train { ... return }`.
//
//  2. Methods whose name starts with "Predict" (the public inference
//     entry points) must not write receiver fields at all.
//
//  3. A Forward with exactly one parameter and no train flag is a
//     quantized inference layer (the qlinear.Layer shape, which has no
//     training mode at all): it must not write receiver fields, ever.
//     Loss Forwards (pred, target) take two parameters and keep their
//     Backward caches.
var Readonlyinfer = &analysis.Analyzer{
	Name: "readonlyinfer",
	Doc: "inference paths are read-only: Forward(train=false) and Predict* methods must not " +
		"write receiver state outside a train guard",
	Run: runReadonlyinfer,
}

func runReadonlyinfer(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || decl.Recv == nil {
				continue
			}
			switch {
			case decl.Name.Name == "Forward" && hasBoolParamNamed(decl, "train"):
				checkForwardWrites(pass, decl)
			case decl.Name.Name == "Forward" && paramCount(decl) == 1:
				checkQuantForwardWrites(pass, decl)
			case len(decl.Name.Name) > len("Predict") && decl.Name.Name[:len("Predict")] == "Predict":
				checkPredictWrites(pass, decl)
			}
		}
	}
	return nil
}

// paramCount counts declared parameters, honouring grouped names
// (`a, b int` is two).
func paramCount(decl *ast.FuncDecl) int {
	if decl.Type.Params == nil {
		return 0
	}
	n := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			n++ // unnamed parameter
			continue
		}
		n += len(field.Names)
	}
	return n
}

func hasBoolParamNamed(decl *ast.FuncDecl, want string) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == want {
				if id, ok := field.Type.(*ast.Ident); ok && id.Name == "bool" {
					return true
				}
			}
		}
	}
	return false
}

// receiverWrites collects assignments (and ++/--) whose target is
// rooted at the method receiver: recv.f, recv.f[i], recv.f.g, ...
func receiverWrites(pass *analysis.Pass, decl *ast.FuncDecl) []ast.Node {
	recv := receiverVar(pass.TypesInfo, decl)
	if recv == nil {
		return nil
	}
	rooted := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.Ident:
				return pass.TypesInfo.Uses[x] == recv
			default:
				return false
			}
		}
	}
	var writes []ast.Node
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				// A plain ident LHS (even the receiver itself) only
				// rebinds a local; selectors/indexes rooted at the
				// receiver mutate shared state.
				if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
					continue
				}
				if rooted(lhs) {
					writes = append(writes, lhs)
				}
			}
		case *ast.IncDecStmt:
			if rooted(n.X) {
				writes = append(writes, n.X)
			}
		}
		return true
	})
	return writes
}

func checkForwardWrites(pass *analysis.Pass, decl *ast.FuncDecl) {
	writes := receiverWrites(pass, decl)
	if len(writes) == 0 {
		return
	}

	// Gate style A: enclosing `if <cond mentions train>`.
	// Gate style B: an earlier `if <cond mentions !train> { ...; return }`.
	var earlyReturnEnds []token.Pos
	type guardRange struct{ lo, hi token.Pos }
	var guards []guardRange
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !mentionsIdent(ifs.Cond, "train") {
			return true
		}
		guards = append(guards, guardRange{ifs.Pos(), ifs.End()})
		if endsInReturn(ifs.Body) {
			earlyReturnEnds = append(earlyReturnEnds, ifs.End())
		}
		return true
	})

	for _, w := range writes {
		gated := false
		for _, g := range guards {
			if g.lo <= w.Pos() && w.End() <= g.hi {
				gated = true
				break
			}
		}
		if !gated {
			for _, e := range earlyReturnEnds {
				if e <= w.Pos() {
					gated = true
					break
				}
			}
		}
		if !gated {
			pass.Reportf(w.Pos(),
				"receiver write in Forward outside a train guard: inference runs concurrently over "+
					"shared layers, so ungated writes race (the BlockDense bug) — gate with `if train` "+
					"or an early `if !train { return }`",
			)
		}
	}
}

// checkQuantForwardWrites handles the single-parameter Forward of the
// quantized inference tier: there is no train mode, so any receiver
// write is a concurrency bug.
func checkQuantForwardWrites(pass *analysis.Pass, decl *ast.FuncDecl) {
	for _, w := range receiverWrites(pass, decl) {
		pass.Reportf(w.Pos(),
			"receiver write in single-parameter Forward: quantized inference layers have no "+
				"training mode and run concurrently over shared weights — keep all scratch state "+
				"in locals",
		)
	}
}

func checkPredictWrites(pass *analysis.Pass, decl *ast.FuncDecl) {
	for _, w := range receiverWrites(pass, decl) {
		pass.Reportf(w.Pos(),
			"receiver write in %s: Predict entry points are inference paths and must be read-only "+
				"(concurrent requests share this receiver)",
			decl.Name.Name)
	}
}

func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		return endsInReturn(last)
	default:
		return false
	}
}
