package vetrules

import (
	"go/ast"
	"go/token"
	"go/types"

	"noble/internal/vetrules/analysis"
)

// Closedflag enforces the lifecycle contract PR-6 repaired: once a type
// carries a closed/draining guard field, every method that can
// re-materialise live resources (assigning a non-nil pointer, handle,
// or callback into the receiver) must consult the guard first. The
// motivating bug: walShard.openSegment reopened segment files when a
// compaction raced Close, resurrecting a closed journal.
//
// The rule: for each struct with a bool (or atomic.Bool) field named
// "closed" or "draining", any method that assigns a non-nil value to a
// receiver field of pointer, interface, chan, or func type must read
// the guard field earlier in the method body. Assigning nil (teardown)
// and assigning the guard itself are exempt.
var Closedflag = &analysis.Analyzer{
	Name: "closedflag",
	Doc: "types with a closed/draining guard field must check the guard before any method " +
		"re-materialises live state (non-nil assignment to a pointer/interface/chan/func field)",
	Run: runClosedflag,
}

func runClosedflag(pass *analysis.Pass) error {
	guards := guardedStructs(pass.Pkg)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || decl.Recv == nil {
				continue
			}
			tname := recvTypeName(decl)
			guard, ok := guards[tname]
			if !ok {
				continue
			}
			checkClosedflagMethod(pass, decl, tname, guard)
		}
	}
	return nil
}

// guardedStructs maps the names of package-level struct types that
// declare a guard field to that field's name.
func guardedStructs(pkg *types.Package) map[string]string {
	out := map[string]string{}
	if pkg == nil {
		return out
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if fld.Name() != "closed" && fld.Name() != "draining" {
				continue
			}
			if isBoolGuard(fld.Type()) {
				out[name] = fld.Name()
				break
			}
		}
	}
	return out
}

func isBoolGuard(t types.Type) bool {
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
		return true
	}
	return baseTypeName(t) == "Bool" // sync/atomic.Bool
}

func runtimeHandleType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Signature:
		return true
	}
	return false
}

func checkClosedflagMethod(pass *analysis.Pass, decl *ast.FuncDecl, tname, guard string) {
	recvVar := receiverVar(pass.TypesInfo, decl)
	if recvVar == nil {
		return
	}

	// Guard reads: any appearance of recv.<guard> that is not the
	// direct target of an assignment. recv.closed.Load() counts.
	var guardReads []token.Pos
	type write struct {
		pos   token.Pos
		field string
	}
	var writes []write

	assignTargets := map[*ast.SelectorExpr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || !isReceiverSelector(pass.TypesInfo, sel, recvVar) {
				continue
			}
			assignTargets[sel] = true
			fld := sel.Sel.Name
			if fld == guard {
				continue
			}
			ft := pass.TypesInfo.TypeOf(sel)
			if ft == nil || !runtimeHandleType(ft) {
				continue
			}
			if rhs := pairedRHS(as, i); rhs != nil && isNilExpr(pass.TypesInfo, rhs) {
				continue
			}
			writes = append(writes, write{sel.Pos(), fld})
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == guard && isReceiverSelector(pass.TypesInfo, sel, recvVar) && !assignTargets[sel] {
			guardReads = append(guardReads, sel.Pos())
		}
		return true
	})

	for _, w := range writes {
		checked := false
		for _, g := range guardReads {
			if g < w.pos {
				checked = true
				break
			}
		}
		if !checked {
			pass.Reportf(w.pos,
				"%s.%s assigns %s.%s without first checking the %q guard: a call racing Close/drain "+
					"could resurrect closed state",
				tname, decl.Name.Name, recvVar.Name(), w.field, guard)
		}
	}
}

// receiverVar resolves the method receiver's *types.Var (nil for
// unnamed/blank receivers).
func receiverVar(info *types.Info, decl *ast.FuncDecl) *types.Var {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// isReceiverSelector reports whether sel is recv.<field> for the given
// receiver variable (directly, or through a closure capture).
func isReceiverSelector(info *types.Info, sel *ast.SelectorExpr, recv *types.Var) bool {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return info.Uses[id] == recv
}

// pairedRHS returns the RHS expression assigned to LHS index i, or nil
// when the assignment shapes don't pair one-to-one (multi-value call).
func pairedRHS(as *ast.AssignStmt, i int) ast.Expr {
	if len(as.Lhs) == len(as.Rhs) {
		return as.Rhs[i]
	}
	return nil
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
