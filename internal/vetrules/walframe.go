package vetrules

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"noble/internal/vetrules/analysis"
)

// walframeCodecMarker blesses a payload-codec type: its methods build
// record payloads that are framed (length + CRC) by the caller, so
// their binary.LittleEndian writes are covered even though the CRC
// computation is elsewhere.
const walframeCodecMarker = "//vet:walframe-codec"

// pinnedMagics are the on-disk file-format version constants. They are
// a wire contract: journals recorded by one build must restore under
// any later build, so redefining a magic (instead of adding a new one
// and teaching recovery both) silently orphans every journal on disk.
// Bumping a format legitimately means minting walMagic02 here AND in
// the store, with recovery accepting both.
var pinnedMagics = map[string]string{
	"walMagic":  "NOBWAL01",
	"snapMagic": "NOBSNP01",
}

// pinnedMagicLen is the fixed magic width the scan/recover paths assume.
const pinnedMagicLen = 8

// Walframe guards the WAL record framing in the durability layer. It
// self-scopes to packages that declare a file magic (a string constant
// whose name ends in "Magic") and enforces:
//
//  1. Every binary.LittleEndian.Append*/Put* into a record buffer
//     happens either in a function that computes the framing CRC
//     (references crc32.ChecksumIEEE) or in a method of a codec type
//     marked //vet:walframe-codec — i.e. bytes cannot reach disk
//     outside the CRC envelope.
//
//  2. Magic constants are never redefined: known names keep their
//     pinned values, all magics are pairwise distinct, and every magic
//     is exactly magicLen (8) bytes so the header scan stays valid.
var Walframe = &analysis.Analyzer{
	Name: "walframe",
	Doc: "binary.LittleEndian writes into record buffers must be covered by the framing CRC, " +
		"and file-magic version constants must never be redefined",
	Run: runWalframe,
}

func runWalframe(pass *analysis.Pass) error {
	magics := magicConsts(pass)
	if len(magics) == 0 {
		return nil // not a durability package
	}
	checkMagicPins(pass, magics)
	docs := typeDeclDoc(pass.Files)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkWalframeFunc(pass, decl, docs)
		}
	}
	return nil
}

type magicConst struct {
	name  string
	value string
	pos   ast.Node
}

// magicConsts collects package-level string constants whose name ends
// in "Magic".
func magicConsts(pass *analysis.Pass) []magicConst {
	var out []magicConst
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasSuffix(name.Name, "Magic") {
						continue
					}
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					out = append(out, magicConst{name.Name, constant.StringVal(c.Val()), name})
				}
			}
		}
	}
	return out
}

func checkMagicPins(pass *analysis.Pass, magics []magicConst) {
	for i, m := range magics {
		if want, pinned := pinnedMagics[m.name]; pinned && m.value != want {
			pass.Reportf(m.pos.Pos(),
				"file magic %s redefined to %q (pinned %q): changing a magic in place orphans every "+
					"journal on disk — mint a new versioned magic and teach recovery both",
				m.name, m.value, want)
		}
		if len(m.value) != pinnedMagicLen {
			pass.Reportf(m.pos.Pos(),
				"file magic %s is %d bytes (must be %d): header scans read a fixed-width magic",
				m.name, len(m.value), pinnedMagicLen)
		}
		for _, other := range magics[:i] {
			if other.value == m.value {
				pass.Reportf(m.pos.Pos(),
					"file magics %s and %s share the value %q: recovery cannot tell the formats apart",
					other.name, m.name, m.value)
			}
		}
	}
}

func checkWalframeFunc(pass *analysis.Pass, decl *ast.FuncDecl, docs map[string]*ast.CommentGroup) {
	if recv := recvTypeName(decl); recv != "" && docHasDirective(docs[recv], walframeCodecMarker) {
		return
	}
	referencesCRC := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgCall(pass.TypesInfo, call, "crc32", "ChecksumIEEE") {
			referencesCRC = true
			return false
		}
		return true
	})
	if referencesCRC {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !strings.HasPrefix(sel.Sel.Name, "Append") && !strings.HasPrefix(sel.Sel.Name, "Put") {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || (inner.Sel.Name != "LittleEndian" && inner.Sel.Name != "BigEndian") {
			return true
		}
		id, ok := inner.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); !ok || pn.Imported().Path() != "encoding/binary" {
			return true
		}
		pass.Reportf(call.Pos(),
			"binary.%s.%s outside the framing CRC: record bytes written here bypass torn-write "+
				"detection — frame them (crc32.ChecksumIEEE) or put the write on a "+
				"//vet:walframe-codec codec type",
			inner.Sel.Name, sel.Sel.Name)
		return true
	})
}
