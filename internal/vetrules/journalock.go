package vetrules

import (
	"go/ast"
	"go/token"

	"noble/internal/vetrules/analysis"
)

// journalSinks are the calls that append to the durable session
// journal: the engine's journaling helpers plus Journal.Append itself.
var journalSinks = map[string]bool{
	"journalAppend":   true,
	"journalSteps":    true,
	"journalReAnchor": true,
	"journalClose":    true,
}

// journalLockConvention is the doc-comment phrase that licenses a
// function to journal without taking the lock itself: the caller
// guarantees it. The convention predates this analyzer (see
// internal/serve/persist.go) — the analyzer just makes it checkable.
const journalLockConvention = "Caller holds the session lock"

// Journalock enforces the PR-4 durability contract that PR-5's seq-1
// bug violated: every journal append for a session must happen while
// that session's lock is held, so the per-session seq order on disk
// matches commit order and fsync=always covers the record before any
// racing append observes the session. A sink call is accepted when a
// Session.Lock()/TryLock() call precedes it in the same function
// (closures included — the create path locks inside the store-init
// closure), when the enclosing function documents the
// "Caller holds the session lock" convention, or when the enclosing
// function is itself one of the journaling helpers.
var Journalock = &analysis.Analyzer{
	Name: "journalock",
	Doc: "journal appends (Journal.Append, journalAppend/journalSteps/journalReAnchor/journalClose) " +
		"must be dominated by the owning session's Lock() in the same function, or carry the " +
		"documented caller-holds-lock convention",
	Run: runJournalock,
}

func runJournalock(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkJournalockFunc(pass, decl)
		}
	}
	return nil
}

func checkJournalockFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	if journalSinks[decl.Name.Name] {
		// The helpers themselves are the documented lock boundary;
		// their internal Journal.Append calls inherit the convention.
		return
	}
	if decl.Name.Name == "Append" && recvTypeName(decl) == "Journal" {
		return
	}
	if docContains(decl.Doc, journalLockConvention) {
		return
	}

	var lockPositions []token.Pos
	type sink struct {
		pos  token.Pos
		name string
	}
	var sinks []sink

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "TryLock":
			if exprTypeName(pass.TypesInfo, sel.X) == "Session" {
				lockPositions = append(lockPositions, call.Pos())
			}
		case "journalAppend", "journalSteps", "journalReAnchor", "journalClose":
			sinks = append(sinks, sink{call.Pos(), sel.Sel.Name})
		case "Append":
			if exprTypeName(pass.TypesInfo, sel.X) == "Journal" {
				sinks = append(sinks, sink{call.Pos(), "Journal.Append"})
			}
		}
		return true
	})

	for _, s := range sinks {
		dominated := false
		for _, lp := range lockPositions {
			if lp < s.pos {
				dominated = true
				break
			}
		}
		if !dominated {
			pass.Reportf(s.pos,
				"%s without a preceding Session.Lock in %s: journal appends must happen under the session lock "+
					"(or document the %q convention)",
				s.name, decl.Name.Name, journalLockConvention)
		}
	}
}
