package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic after suppression filtering, resolved to a
// concrete file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// ignoreEntry is one parsed //vet:ignore directive.
type ignoreEntry struct {
	analyzers []string
	file      string
	line      int // the line the directive suppresses
	pos       token.Position
	used      bool
}

// ignorePrefix introduces a suppression comment:
//
//	//vet:ignore journalock -- sweeper is the session's sole writer here
//
// The directive names one or more analyzers (comma-separated) and MUST
// carry a justification after " -- ". Written on its own line it
// suppresses findings on the line below; written at the end of a code
// line it suppresses findings on that line.
const ignorePrefix = "//vet:ignore"

// IgnoreAnalyzerName attributes findings about the suppression
// directives themselves (malformed syntax, unused suppressions).
const IgnoreAnalyzerName = "vetignore"

// parseIgnores scans a package's comments for //vet:ignore directives.
// Malformed directives (no justification) are returned as findings.
func parseIgnores(pkg *Package) ([]*ignoreEntry, []Finding) {
	var entries []*ignoreEntry
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				names, reason, found := strings.Cut(rest, " -- ")
				if !found || strings.TrimSpace(reason) == "" || strings.TrimSpace(names) == "" {
					bad = append(bad, Finding{
						Analyzer: IgnoreAnalyzerName,
						Pos:      pos,
						Message:  "malformed //vet:ignore: want `//vet:ignore <analyzer>[,<analyzer>] -- <justification>`",
					})
					continue
				}
				e := &ignoreEntry{file: pos.Filename, line: pos.Line, pos: pos}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						e.analyzers = append(e.analyzers, n)
					}
				}
				if standaloneComment(pkg.Sources[pos.Filename], pos) {
					e.line = pos.Line + 1
				}
				entries = append(entries, e)
			}
		}
	}
	return entries, bad
}

// standaloneComment reports whether the comment at pos is the first
// non-whitespace token on its line; such directives apply to the line
// below rather than their own.
func standaloneComment(src []byte, pos token.Position) bool {
	if src == nil {
		return true
	}
	lineStart := pos.Offset - (pos.Column - 1)
	if lineStart < 0 || pos.Offset > len(src) {
		return true
	}
	return strings.TrimSpace(string(src[lineStart:pos.Offset])) == ""
}

// RunAnalyzers runs each analyzer over each package, applies
// //vet:ignore suppression, and returns the surviving findings sorted
// by position. Suppressions that name an analyzer that ran but did not
// fire on the suppressed line are themselves reported: stale ignores
// hide nothing and must be deleted.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var all []Finding
	for _, pkg := range pkgs {
		ignores, bad := parseIgnores(pkg)
		all = append(all, bad...)
		ran := map[string]bool{}
		for _, a := range analyzers {
			ran[a.Name] = true
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			var diags []Diagnostic
			pass.Report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		diagLoop:
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				for _, ig := range ignores {
					if ig.file == pos.Filename && ig.line == pos.Line && contains(ig.analyzers, a.Name) {
						ig.used = true
						continue diagLoop
					}
				}
				all = append(all, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
		for _, ig := range ignores {
			if ig.used {
				continue
			}
			covered := true
			for _, n := range ig.analyzers {
				if !ran[n] {
					covered = false
					break
				}
			}
			if covered {
				all = append(all, Finding{
					Analyzer: IgnoreAnalyzerName,
					Pos:      ig.pos,
					Message: fmt.Sprintf("unused //vet:ignore %s: no suppressed finding on line %d",
						strings.Join(ig.analyzers, ","), ig.line),
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return all, nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
