package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package ready to be
// handed to analyzers.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Sources map[string][]byte // filename -> raw bytes, for directive scanning
	Types   *types.Package
	Info    *types.Info
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// goListPkg is the subset of `go list -json` output the loader needs.
type goListPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// LoadPatterns expands Go package patterns (./..., a dir, an import
// path) via `go list` and returns each matched package parsed and
// type-checked. Test files are excluded: the invariants noble-vet
// encodes govern production code, and test call sites routinely violate
// them on purpose (e.g. provoking a closed journal).
//
// All packages share one FileSet and one source importer so dependency
// type-checking work is reused across packages.
func LoadPatterns(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var metas []goListPkg
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p goListPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if len(p.GoFiles) > 0 {
			metas = append(metas, p)
		}
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ImportPath < metas[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, m := range metas {
		pkg, err := checkDir(fset, imp, m.Dir, m.ImportPath, m.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkDir parses the named files in dir and type-checks them as one
// package using imp for imports.
func checkDir(fset *token.FileSet, imp types.Importer, dir, pkgPath string, goFiles []string) (*Package, error) {
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Sources: map[string][]byte{},
		Info:    newInfo(),
	}
	for _, name := range goFiles {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		pkg.Sources[path] = src
		pkg.Files = append(pkg.Files, f)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, fset, pkg.Files, pkg.Info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("type-checking %s:\n  %s", pkgPath, strings.Join(msgs, "\n  "))
	}
	pkg.Types = tpkg
	return pkg, nil
}

// fixtureImporter resolves imports for analysistest-style fixture trees
// rooted at a GOPATH-shaped src directory: an import path that exists
// as a directory under srcRoot is loaded from source there; anything
// else falls through to the standard library source importer.
type fixtureImporter struct {
	srcRoot string
	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fi.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := checkFixtureDir(fi, dir, path)
		if err != nil {
			return nil, err
		}
		fi.cache[path] = pkg.Types
		return pkg.Types, nil
	}
	return fi.std.Import(path)
}

func checkFixtureDir(fi *fixtureImporter, dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", pkgPath, dir)
	}
	sort.Strings(goFiles)
	return checkDir(fi.fset, fi, dir, pkgPath, goFiles)
}

// LoadFixture loads the fixture package at import path pkgPath under a
// GOPATH-style srcRoot (conventionally internal/vetrules/testdata/src).
// Fixture packages may import sibling fixture packages and the standard
// library.
func LoadFixture(srcRoot, pkgPath string) (*Package, error) {
	fset := token.NewFileSet()
	fi := &fixtureImporter{
		srcRoot: srcRoot,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
	}
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkgPath))
	return checkFixtureDir(fi, dir, pkgPath)
}

// SplitFixtureDir recognises a filesystem path that points inside an
// analysistest fixture tree (".../testdata/src/<pkg>") and splits it
// into the src root and the fixture's import path. ok is false when the
// path has no testdata/src component.
func SplitFixtureDir(dir string) (srcRoot, pkgPath string, ok bool) {
	clean := filepath.Clean(dir)
	marker := filepath.Join("testdata", "src") + string(filepath.Separator)
	i := strings.Index(clean, marker)
	if i < 0 {
		return "", "", false
	}
	srcRoot = clean[:i+len(marker)-1]
	pkgPath = filepath.ToSlash(clean[i+len(marker):])
	if pkgPath == "" {
		return "", "", false
	}
	return srcRoot, pkgPath, true
}
