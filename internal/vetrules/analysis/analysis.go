// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis driver surface: an Analyzer owns a
// Run function, a Pass hands it one type-checked package, and findings
// flow out as Diagnostics. The shapes intentionally mirror x/tools so
// the analyzers in internal/vetrules port verbatim to the upstream
// framework if the module ever grows that dependency; until then the
// repo stays buildable offline with only the standard library.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name is the identifier used in
// findings and in //vet:ignore suppression comments; Doc is the
// one-paragraph contract shown by `noble-vet -list`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's worth of syntax and type information into
// an Analyzer's Run function. Report appends a Diagnostic; analyzers
// must not retain the Pass past Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// WithStack walks every node under each file and invokes fn with the
// node plus the stack of ancestors (outermost first, n last). Returning
// false from fn prunes the subtree below n.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// Funcs invokes fn once per function body in the files: every FuncDecl
// with a body and every FuncLit. decl is the innermost enclosing
// FuncDecl (nil only for a FuncLit outside any declaration, e.g. a
// package-level var initializer); fun is the owning node itself, either
// an *ast.FuncDecl or an *ast.FuncLit.
func Funcs(files []*ast.File, fn func(decl *ast.FuncDecl, fun ast.Node, body *ast.BlockStmt)) {
	WithStack(files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n, n, n.Body)
			}
		case *ast.FuncLit:
			var decl *ast.FuncDecl
			for i := len(stack) - 1; i >= 0; i-- {
				if d, ok := stack[i].(*ast.FuncDecl); ok {
					decl = d
					break
				}
			}
			fn(decl, n, n.Body)
		}
		return true
	})
}

// WalkShallow walks the statements and expressions of body without
// descending into nested function literals. Use it when ownership
// matters: a `return` inside a closure is the closure's return, not the
// enclosing function's.
func WalkShallow(body *ast.BlockStmt, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return fn(n)
	})
}
