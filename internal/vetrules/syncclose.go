package vetrules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"noble/internal/vetrules/analysis"
)

// Syncclose closes the durability gap the ISSUE-7 audit found in the
// snapshot write path: on files opened for writing, a discarded
// Close()/Sync() error can silently drop buffered bytes — the write
// succeeded, the fsync or final flush did not, and nobody noticed. In
// a WAL/snapshot layer that is data loss, not style.
//
// Scope: packages that declare a file magic (the durability layer and
// its fixtures). Within a function, any variable bound from os.Create
// or a writable os.OpenFile is tracked; a bare `f.Close()`, `f.Sync()`,
// `defer f.Close()`, or `_ = f.Close()` on it is a finding — unless a
// *checked* Close of the same file appears later in the function, which
// licenses the usual deferred-double-close backstop pattern. Read-only
// opens (os.Open) are exempt: their Close can fail without losing data.
var Syncclose = &analysis.Analyzer{
	Name: "syncclose",
	Doc: "in the durability layer, Close/Sync errors on files opened for writing must be " +
		"checked and propagated — a failed close can drop buffered bytes",
	Run: runSyncclose,
}

func runSyncclose(pass *analysis.Pass) error {
	if len(magicConsts(pass)) == 0 {
		return nil // not a durability package
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkSynccloseFunc(pass, decl)
		}
	}
	return nil
}

// closeUse is one Close/Sync call on a tracked file, classified by how
// its result is consumed.
type closeUse struct {
	call    *ast.CallExpr
	obj     types.Object
	method  string // "Close" or "Sync"
	discard string // "" when the error is checked, else the discard form
}

func checkSynccloseFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	// Variables bound from writable opens in this function.
	writable := map[types.Object]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isWritableOpen(pass.TypesInfo, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				writable[obj] = true
			}
		}
		return true
	})
	if len(writable) == 0 {
		return
	}

	trackedCall := func(call *ast.CallExpr) (types.Object, string) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
			return nil, ""
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return nil, ""
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || !writable[obj] {
			return nil, ""
		}
		return obj, sel.Sel.Name
	}

	// Classify every tracked Close/Sync by its immediate parent node.
	var uses []closeUse
	var stack []ast.Node
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, method := trackedCall(call)
		if obj == nil {
			return true
		}
		form := ""
		if len(stack) >= 2 {
			switch parent := stack[len(stack)-2].(type) {
			case *ast.ExprStmt:
				form = "statement"
			case *ast.DeferStmt:
				form = "defer"
			case *ast.GoStmt:
				form = "go statement"
			case *ast.AssignStmt:
				if blankOnly(parent.Lhs) {
					form = "blank assignment"
				}
			}
		}
		uses = append(uses, closeUse{call, obj, method, form})
		return true
	})

	// Checked Close positions license earlier deferred backstops.
	var checkedClosePos []struct {
		obj types.Object
		pos token.Pos
	}
	for _, u := range uses {
		if u.discard == "" && u.method == "Close" {
			checkedClosePos = append(checkedClosePos, struct {
				obj types.Object
				pos token.Pos
			}{u.obj, u.call.Pos()})
		}
	}

	for _, u := range uses {
		if u.discard == "" {
			continue
		}
		// Only a *deferred* backstop is licensed by a later checked
		// Close: an inline discard on an error path returns before the
		// checked Close ever runs.
		if u.discard == "defer" {
			backstopped := false
			for _, c := range checkedClosePos {
				if c.obj == u.obj && c.pos > u.call.Pos() {
					backstopped = true
					break
				}
			}
			if backstopped {
				continue
			}
		}
		pass.Reportf(u.call.Pos(),
			"%s discards the error from %s.%s on a file opened for writing: a failed %s can drop "+
				"buffered snapshot/WAL bytes — check and propagate it",
			u.discard, u.obj.Name(), u.method, strings.ToLower(u.method))
	}
}

func blankOnly(lhs []ast.Expr) bool {
	for _, e := range lhs {
		if id, ok := e.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// isWritableOpen matches os.Create and os.OpenFile whose flag argument
// mentions a write-capable flag.
func isWritableOpen(info *types.Info, call *ast.CallExpr) bool {
	if isPkgCall(info, call, "os", "Create") {
		return true
	}
	if !isPkgCall(info, call, "os", "OpenFile") {
		return false
	}
	if len(call.Args) < 2 {
		return false
	}
	writable := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			switch id.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
				writable = true
			}
		}
		return true
	})
	return writable
}
