// Package vettest is a minimal analysistest: it loads fixture packages
// from a GOPATH-style testdata/src tree, runs one analyzer (with the
// production suppression filter in the loop, so //vet:ignore behaviour
// is testable), and checks the findings against `// want` comments.
//
// Expectation syntax, as in golang.org/x/tools analysistest: a comment
// on the same line as the expected diagnostic holding one or more Go
// string literals, each a regexp the diagnostic message must match:
//
//	sh.f = f // want `assigns sh\.f without first checking`
//
// Every finding must match an expectation on its line and every
// expectation must be matched by a finding; anything else fails the
// test.
package vettest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"noble/internal/vetrules/analysis"
)

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under srcRoot and checks analyzer a's
// findings against the fixtures' want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		pkg, err := analysis.LoadFixture(srcRoot, pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
		}
		wants, err := parseWants(pkg)
		if err != nil {
			t.Fatalf("fixture %s: %v", pkgPath, err)
		}
	findingLoop:
		for _, f := range findings {
			for _, w := range wants {
				if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
					continue
				}
				if w.re.MatchString(f.Message) {
					w.matched = true
					continue findingLoop
				}
			}
			t.Errorf("%s: unexpected finding: %s", pkgPath, f)
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: no finding matched want %q", pkgPath, w.file, w.line, w.raw)
			}
		}
	}
}

// parseWants extracts `// want` expectations from a package's comments.
func parseWants(pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parseWantPatterns(c.Text[i+len("// want "):])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants, nil
}

// parseWantPatterns reads a sequence of Go string literals (quoted or
// backquoted) separated by spaces.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted want pattern")
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted want pattern")
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted want pattern %s: %v", s[:end+1], err)
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted Go strings (at %q)", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("// want comment with no patterns")
	}
	return out, nil
}
