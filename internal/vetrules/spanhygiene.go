package vetrules

import (
	"go/ast"
	"go/token"
	"go/types"

	"noble/internal/vetrules/analysis"
)

// Spanhygiene keeps the PR-6 tracing plane trustworthy. Two rules:
//
//  1. Every span opened with `x := obs.Begin(...)` must be ended on
//     every return path of the function that opened it — either a
//     `defer x.End()`, or an `x.End()` preceding each return. A leaked
//     span skews the per-stage histograms silently (the stage simply
//     never reports), which is exactly the failure mode a latency
//     attribution plane exists to rule out.
//
//  2. Tracer APIs must not be fed context.Background()/context.TODO():
//     a fresh context carries no trace, so the span silently detaches
//     from the request that caused it. Pass the request context (or a
//     context derived from it) instead.
//
// The package that implements the tracer (declares ActiveSpan) is
// exempt — it manipulates spans structurally.
var Spanhygiene = &analysis.Analyzer{
	Name: "spanhygiene",
	Doc: "obs spans must be ended on every return path, and tracer APIs must not be called " +
		"with context.Background()/context.TODO()",
	Run: runSpanhygiene,
}

// obsSpanAPIs are the obs entry points that attach to a trace carried
// by their context argument.
var obsSpanAPIs = map[string]bool{
	"Begin":        true,
	"AddSpan":      true,
	"AddBatchSpan": true,
	"With":         true,
	"SetRequestID": true,
}

func runSpanhygiene(pass *analysis.Pass) error {
	if declaresTypeNamed(pass, "ActiveSpan") {
		return nil
	}
	checkBackgroundContexts(pass)
	analysis.Funcs(pass.Files, func(decl *ast.FuncDecl, fun ast.Node, body *ast.BlockStmt) {
		checkSpanEnds(pass, body)
	})
	return nil
}

func checkBackgroundContexts(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !obsSpanAPIs[sel.Sel.Name] || !isObsPkgSelector(pass, sel) {
				return true
			}
			for _, arg := range call.Args {
				ac, ok := ast.Unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				if isPkgCall(pass.TypesInfo, ac, "context", "Background") ||
					isPkgCall(pass.TypesInfo, ac, "context", "TODO") {
					pass.Reportf(arg.Pos(),
						"obs.%s called with context.%s: a fresh context carries no trace, "+
							"so this span detaches from its request — propagate the request context",
						sel.Sel.Name, ast.Unparen(ac.Fun).(*ast.SelectorExpr).Sel.Name)
				}
			}
			return true
		})
	}
}

// isObsPkgSelector reports whether sel.X names an imported package
// called "obs".
func isObsPkgSelector(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Name() == "obs"
}

// checkSpanEnds analyses one function body (closures are analysed
// separately by Funcs; WalkShallow keeps their returns out of ours).
func checkSpanEnds(pass *analysis.Pass, body *ast.BlockStmt) {
	type span struct {
		obj      any // *types.Var of the span variable
		name     string
		pos      token.Pos
		deferred bool
		ends     []token.Pos
	}
	var spans []*span
	spanFor := func(e ast.Expr) *span {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return nil
		}
		for _, s := range spans {
			if s.obj == any(obj) {
				return s
			}
		}
		return nil
	}

	var returns []token.Pos
	analysis.WalkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Begin" || !isObsPkgSelector(pass, sel) {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				return true
			}
			spans = append(spans, &span{obj: obj, name: id.Name, pos: call.Pos()})
		case *ast.DeferStmt:
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if s := spanFor(sel.X); s != nil {
					s.deferred = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if s := spanFor(sel.X); s != nil {
					s.ends = append(s.ends, n.Pos())
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		}
		return true
	})

	for _, s := range spans {
		if s.deferred {
			continue
		}
		if len(s.ends) == 0 {
			pass.Reportf(s.pos, "span %s from obs.Begin is never ended: the %s stage will never report", s.name, s.name)
			continue
		}
		for _, r := range returns {
			if r <= s.pos {
				continue
			}
			ended := false
			for _, e := range s.ends {
				if e > s.pos && e <= r {
					ended = true
					break
				}
			}
			if !ended {
				pass.Reportf(r, "return leaks span %s opened at %s: end it on every return path (or defer %s.End())",
					s.name, pass.Fset.Position(s.pos), s.name)
			}
		}
	}
}
