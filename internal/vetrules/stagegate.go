package vetrules

import (
	"go/ast"
	"go/types"

	"noble/internal/vetrules/analysis"
)

// Stagegate enforces the deployment-pipeline invariant PR-9 introduced:
// a model generation's lifecycle stage may only change through the
// registry's single transition function, so every stage mutation is
// validated against the state machine, stamped, stats-reset, and
// journaled as a WAL lifecycle event. A stray `m.Stage = ...` anywhere
// else would silently skip the legality check and the crash-recovery
// journal.
//
// Marking scheme, all within the declaring package:
//
//   - `//vet:stagegate` on a named type (serve.Stage) gates it: any
//     assignment to a struct FIELD of that type is flagged.
//   - `//vet:stagegate-transition` on a function exempts its body — the
//     one blessed mutation point (serve.applyStage).
//   - `//vet:stagegate-exempt` on a struct field declaration exempts
//     that field — configuration-shaped fields of the stage type (a
//     bundle's TargetStage) that are not live state.
//
// Composite literals are not flagged: constructing a snapshot or a
// status struct with a Stage value reads state, it doesn't transition a
// live generation.
var Stagegate = &analysis.Analyzer{
	Name: "stagegate",
	Doc: "fields of a //vet:stagegate-marked type may only be assigned inside a " +
		"//vet:stagegate-transition function (single-transition-point stage machines)",
	Run: runStagegate,
}

const (
	stagegateMark       = "//vet:stagegate"
	stagegateTransition = "//vet:stagegate-transition"
	stagegateExempt     = "//vet:stagegate-exempt"
)

// docHasExactDirective is docHasDirective with whole-comment matching,
// so the bare type mark is not satisfied by its -transition/-exempt
// variants.
func docHasExactDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive {
			return true
		}
	}
	return false
}

func runStagegate(pass *analysis.Pass) error {
	gated := map[string]bool{} // named types carrying //vet:stagegate
	for name, doc := range typeDeclDoc(pass.Files) {
		if docHasExactDirective(doc, stagegateMark) {
			gated[name] = true
		}
	}
	if len(gated) == 0 {
		return nil
	}
	exempt := stagegateExemptFields(pass.Files)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if docHasExactDirective(decl.Doc, stagegateTransition) {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					ftype := exprTypeName(pass.TypesInfo, sel)
					if !gated[ftype] {
						continue
					}
					// Only field writes count: a gated-typed package
					// variable behind a selector (pkg.Var) has no
					// Selection entry.
					s, ok := pass.TypesInfo.Selections[sel]
					if !ok || s.Kind() != types.FieldVal {
						continue
					}
					owner := exprTypeName(pass.TypesInfo, sel.X)
					if exempt[owner+"."+sel.Sel.Name] {
						continue
					}
					pass.Reportf(sel.Pos(),
						"%s.%s is a %s stage field: assign it only inside the "+
							"//vet:stagegate-transition function, so the transition is "+
							"validated, stamped, and journaled",
						owner, sel.Sel.Name, ftype)
				}
				return true
			})
		}
	}
	return nil
}

// stagegateExemptFields collects "Struct.Field" keys for fields whose
// declaration carries //vet:stagegate-exempt (doc comment or trailing
// line comment).
func stagegateExemptFields(files []*ast.File) map[string]bool {
	out := map[string]bool{}
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					if !docHasExactDirective(fld.Doc, stagegateExempt) &&
						!docHasExactDirective(fld.Comment, stagegateExempt) {
						continue
					}
					for _, name := range fld.Names {
						out[ts.Name.Name+"."+name.Name] = true
					}
				}
			}
		}
	}
	return out
}
