// Package dataset materializes training/validation/test collections for
// both applications. For Wi-Fi it follows the fingerprinting offline-phase
// protocol of §II/§IV: signal vectors are recorded at surveyed reference
// locations together with building, floor, longitude and latitude. The
// synthetic builders (SynthUJI, SynthIPIN) substitute for the proprietary
// UJIIndoorLoc/IPIN2016 surveys — see DESIGN.md — and CSV I/O in the
// UJIIndoorLoc column format is provided so the real datasets can be
// dropped in unchanged.
package dataset

import (
	"fmt"

	"noble/internal/floorplan"
	"noble/internal/geo"
	"noble/internal/mat"
	"noble/internal/radio"
)

// WiFiSample is one fingerprint observation.
type WiFiSample struct {
	RSSI     []float64 // raw dBm values, radio.NotDetected for silent WAPs
	Features []float64 // normalized [0,1] network inputs
	Pos      geo.Point
	Building int
	Floor    int
}

// WiFi is a complete fingerprinting dataset with its splits and the plan
// it was surveyed on (nil when loaded from CSV without a plan).
type WiFi struct {
	Plan         *floorplan.Plan
	Sim          *radio.Simulator
	NumWAPs      int
	NumBuildings int
	NumFloors    int
	Train        []WiFiSample
	Val          []WiFiSample
	Test         []WiFiSample
}

// WiFiConfig controls synthetic survey generation.
type WiFiConfig struct {
	NumWAPs           int     // fingerprint dimensionality W
	RefSpacing        float64 // meters between survey reference points
	RefJitter         float64 // positional jitter of the survey grid
	SamplesPerRef     int     // offline-phase measurements per reference
	TestSamplesPerRef int     // online-phase measurements per reference
	TestJitter        float64 // how far online users stand from the surveyed spot
	ValFraction       float64 // fraction of offline samples held out
	Seed              int64
	Radio             radio.Config
}

// DefaultUJIConfig is the full-size synthetic UJIIndoorLoc stand-in:
// ≈900+ distinct survey positions across 3 buildings × 4 floors (the real
// dataset has ≈933), 200 access points, and heterogeneous devices.
func DefaultUJIConfig() WiFiConfig {
	return WiFiConfig{
		NumWAPs:           200,
		RefSpacing:        10,
		RefJitter:         2,
		SamplesPerRef:     6,
		TestSamplesPerRef: 2,
		TestJitter:        0.3,
		ValFraction:       0.1,
		Seed:              2021,
		Radio:             radio.DefaultConfig(),
	}
}

// SmallUJIConfig is a scaled-down preset for CI and go-test benchmarks.
func SmallUJIConfig() WiFiConfig {
	cfg := DefaultUJIConfig()
	cfg.NumWAPs = 60
	cfg.RefSpacing = 18
	cfg.SamplesPerRef = 4
	cfg.TestSamplesPerRef = 2
	return cfg
}

// DefaultIPINConfig is the single-building IPIN2016 stand-in.
func DefaultIPINConfig() WiFiConfig {
	return WiFiConfig{
		NumWAPs:           80,
		RefSpacing:        3,
		RefJitter:         0.5,
		SamplesPerRef:     8,
		TestSamplesPerRef: 2,
		TestJitter:        0.2,
		ValFraction:       0.1,
		Seed:              2016,
		Radio:             radio.DefaultConfig(),
	}
}

// SmallIPINConfig is the scaled-down IPIN preset.
func SmallIPINConfig() WiFiConfig {
	cfg := DefaultIPINConfig()
	cfg.NumWAPs = 40
	cfg.RefSpacing = 5
	cfg.SamplesPerRef = 5
	return cfg
}

// SynthUJI generates the synthetic UJIIndoorLoc-like dataset.
func SynthUJI(cfg WiFiConfig) *WiFi { return Generate(floorplan.UJICampus(), cfg) }

// SynthIPIN generates the synthetic IPIN2016-like dataset.
func SynthIPIN(cfg WiFiConfig) *WiFi { return Generate(floorplan.IPINBuilding(), cfg) }

// Generate runs the offline and online survey phases on an arbitrary plan:
// reference points are laid out on every floor, SamplesPerRef noisy
// fingerprints are recorded at each (offline radio map collection), a
// ValFraction of offline samples is held out, and TestSamplesPerRef online
// measurements are taken near (TestJitter) each reference.
func Generate(plan *floorplan.Plan, cfg WiFiConfig) *WiFi {
	if cfg.SamplesPerRef < 1 || cfg.NumWAPs < 1 {
		panic(fmt.Sprintf("dataset: bad WiFi config %+v", cfg))
	}
	rng := mat.NewRand(cfg.Seed)
	sim := radio.NewSimulator(plan, cfg.Radio, cfg.NumWAPs, cfg.Seed+1)
	refs := plan.ReferencePoints(rng, cfg.RefSpacing, cfg.RefJitter)
	if len(refs) == 0 {
		panic("dataset: plan produced no reference points")
	}
	ds := &WiFi{
		Plan:         plan,
		Sim:          sim,
		NumWAPs:      cfg.NumWAPs,
		NumBuildings: len(plan.Buildings),
		NumFloors:    plan.FloorCount(),
	}
	measure := func(p geo.Point, b, f int) WiFiSample {
		rssi := sim.Measure(p, b, f, rng)
		return WiFiSample{
			RSSI:     rssi,
			Features: radio.Normalize(rssi, cfg.Radio.DetectionThreshold),
			Pos:      p,
			Building: b,
			Floor:    f,
		}
	}
	for _, ref := range refs {
		for s := 0; s < cfg.SamplesPerRef; s++ {
			smp := measure(ref.Pos, ref.Building, ref.Floor)
			if rng.Float64() < cfg.ValFraction {
				ds.Val = append(ds.Val, smp)
			} else {
				ds.Train = append(ds.Train, smp)
			}
		}
		for s := 0; s < cfg.TestSamplesPerRef; s++ {
			p := ref.Pos
			if cfg.TestJitter > 0 {
				p.X += (rng.Float64() - 0.5) * 2 * cfg.TestJitter
				p.Y += (rng.Float64() - 0.5) * 2 * cfg.TestJitter
			}
			ds.Test = append(ds.Test, measure(p, ref.Building, ref.Floor))
		}
	}
	return ds
}

// FeaturesMatrix stacks the normalized features of samples into a
// len(samples)×W matrix.
func FeaturesMatrix(samples []WiFiSample) *mat.Dense {
	if len(samples) == 0 {
		panic("dataset: FeaturesMatrix of empty slice")
	}
	w := len(samples[0].Features)
	out := mat.New(len(samples), w)
	for i, s := range samples {
		if len(s.Features) != w {
			panic(fmt.Sprintf("dataset: sample %d has %d features, want %d", i, len(s.Features), w))
		}
		copy(out.Row(i), s.Features)
	}
	return out
}

// Positions extracts the ground-truth coordinates of samples.
func Positions(samples []WiFiSample) []geo.Point {
	out := make([]geo.Point, len(samples))
	for i, s := range samples {
		out[i] = s.Pos
	}
	return out
}

// BuildingLabels extracts building IDs (clamped at 0 for outdoor samples).
func BuildingLabels(samples []WiFiSample) []int {
	out := make([]int, len(samples))
	for i, s := range samples {
		b := s.Building
		if b < 0 {
			b = 0
		}
		out[i] = b
	}
	return out
}

// FloorLabels extracts floor indices.
func FloorLabels(samples []WiFiSample) []int {
	out := make([]int, len(samples))
	for i, s := range samples {
		out[i] = s.Floor
	}
	return out
}
