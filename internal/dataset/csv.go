package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"noble/internal/geo"
	"noble/internal/radio"
)

// SaveUJICSV writes samples in the UJIIndoorLoc column layout: WAP001..WAPn
// raw RSSI columns followed by LONGITUDE, LATITUDE, FLOOR and BUILDINGID.
// Undetected access points are written as 100, matching the published
// dataset.
func SaveUJICSV(w io.Writer, samples []WiFiSample) error {
	if len(samples) == 0 {
		return fmt.Errorf("dataset: no samples to save")
	}
	cw := csv.NewWriter(w)
	numWAPs := len(samples[0].RSSI)
	header := make([]string, 0, numWAPs+4)
	for i := 1; i <= numWAPs; i++ {
		header = append(header, fmt.Sprintf("WAP%03d", i))
	}
	header = append(header, "LONGITUDE", "LATITUDE", "FLOOR", "BUILDINGID")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, s := range samples {
		if len(s.RSSI) != numWAPs {
			return fmt.Errorf("dataset: sample %d has %d WAPs, want %d", i, len(s.RSSI), numWAPs)
		}
		for j, v := range s.RSSI {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[numWAPs] = strconv.FormatFloat(s.Pos.X, 'g', -1, 64)
		row[numWAPs+1] = strconv.FormatFloat(s.Pos.Y, 'g', -1, 64)
		row[numWAPs+2] = strconv.Itoa(s.Floor)
		row[numWAPs+3] = strconv.Itoa(s.Building)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadUJICSV reads a CSV in the UJIIndoorLoc layout (as written by
// SaveUJICSV, or the published trainingData.csv — extra metadata columns
// such as SPACEID/USERID are ignored). The detection threshold is used to
// normalize features; pass the value matching the capture campaign
// (UJIIndoorLoc uses RSSI down to about -104 dBm, so -104 is a reasonable
// choice for the real data).
func LoadUJICSV(r io.Reader, detectionThreshold float64) ([]WiFiSample, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	var wapCols []int
	lonCol, latCol, floorCol, bldCol := -1, -1, -1, -1
	for i, name := range header {
		switch {
		case len(name) >= 3 && name[:3] == "WAP":
			wapCols = append(wapCols, i)
		case name == "LONGITUDE":
			lonCol = i
		case name == "LATITUDE":
			latCol = i
		case name == "FLOOR":
			floorCol = i
		case name == "BUILDINGID":
			bldCol = i
		}
	}
	if len(wapCols) == 0 || lonCol < 0 || latCol < 0 || floorCol < 0 || bldCol < 0 {
		return nil, fmt.Errorf("dataset: CSV header missing required columns (WAP*, LONGITUDE, LATITUDE, FLOOR, BUILDINGID)")
	}
	var samples []WiFiSample
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		rssi := make([]float64, len(wapCols))
		for j, c := range wapCols {
			v, err := strconv.ParseFloat(rec[c], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d col %d: %w", line, c+1, err)
			}
			rssi[j] = v
		}
		lon, err := strconv.ParseFloat(rec[lonCol], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d longitude: %w", line, err)
		}
		lat, err := strconv.ParseFloat(rec[latCol], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d latitude: %w", line, err)
		}
		floor, err := strconv.Atoi(rec[floorCol])
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d floor: %w", line, err)
		}
		bld, err := strconv.Atoi(rec[bldCol])
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d building: %w", line, err)
		}
		samples = append(samples, WiFiSample{
			RSSI:     rssi,
			Features: radio.Normalize(rssi, detectionThreshold),
			Pos:      geo.Point{X: lon, Y: lat},
			Building: bld,
			Floor:    floor,
		})
	}
	return samples, nil
}
