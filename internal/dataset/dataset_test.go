package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"noble/internal/geo"
	"noble/internal/radio"
)

func tinyConfig() WiFiConfig {
	cfg := SmallUJIConfig()
	cfg.NumWAPs = 20
	cfg.RefSpacing = 30
	cfg.SamplesPerRef = 3
	cfg.TestSamplesPerRef = 1
	return cfg
}

func TestSynthUJIStructure(t *testing.T) {
	ds := SynthUJI(tinyConfig())
	if ds.NumBuildings != 3 || ds.NumFloors != 4 {
		t.Fatalf("buildings=%d floors=%d", ds.NumBuildings, ds.NumFloors)
	}
	if len(ds.Train) == 0 || len(ds.Test) == 0 {
		t.Fatal("empty splits")
	}
	for _, s := range ds.Train {
		if len(s.RSSI) != 20 || len(s.Features) != 20 {
			t.Fatalf("sample width %d/%d", len(s.RSSI), len(s.Features))
		}
		if s.Building < 0 || s.Building > 2 || s.Floor < 0 || s.Floor > 3 {
			t.Fatalf("labels out of range: b=%d f=%d", s.Building, s.Floor)
		}
		for _, f := range s.Features {
			if f < 0 || f > 1 {
				t.Fatalf("feature %v outside [0,1]", f)
			}
		}
	}
}

func TestSynthUJITrainPositionsAccessible(t *testing.T) {
	ds := SynthUJI(tinyConfig())
	for _, s := range ds.Train {
		if !ds.Plan.Accessible(s.Pos) {
			t.Fatalf("train sample at inaccessible %v", s.Pos)
		}
	}
}

func TestSynthUJIValFraction(t *testing.T) {
	cfg := tinyConfig()
	cfg.ValFraction = 0.25
	cfg.SamplesPerRef = 8
	ds := SynthUJI(cfg)
	total := len(ds.Train) + len(ds.Val)
	frac := float64(len(ds.Val)) / float64(total)
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("val fraction %v want ≈0.25", frac)
	}
}

func TestSynthUJIDeterministic(t *testing.T) {
	a := SynthUJI(tinyConfig())
	b := SynthUJI(tinyConfig())
	if len(a.Train) != len(b.Train) {
		t.Fatal("split sizes differ across runs")
	}
	for i := range a.Train {
		if a.Train[i].Pos != b.Train[i].Pos || a.Train[i].RSSI[0] != b.Train[i].RSSI[0] {
			t.Fatal("same seed must reproduce the dataset")
		}
	}
}

func TestSynthIPINSingleBuilding(t *testing.T) {
	cfg := SmallIPINConfig()
	cfg.NumWAPs = 15
	cfg.RefSpacing = 6
	ds := SynthIPIN(cfg)
	if ds.NumBuildings != 1 {
		t.Fatalf("buildings=%d", ds.NumBuildings)
	}
	for _, s := range ds.Train {
		if s.Building != 0 {
			t.Fatal("IPIN samples must be in building 0")
		}
	}
}

func TestTestJitterKeepsSamplesNearRefs(t *testing.T) {
	cfg := tinyConfig()
	cfg.TestJitter = 0.3
	ds := SynthUJI(cfg)
	// Every test sample must be within jitter of some train position.
	for _, ts := range ds.Test {
		best := math.Inf(1)
		for _, tr := range ds.Train {
			if d := geo.Dist(ts.Pos, tr.Pos); d < best {
				best = d
			}
		}
		if best > 0.3*math.Sqrt2+1e-9 {
			t.Fatalf("test sample %v is %vm from nearest ref", ts.Pos, best)
		}
	}
}

func TestFeaturesMatrix(t *testing.T) {
	ds := SynthUJI(tinyConfig())
	m := FeaturesMatrix(ds.Train)
	if m.Rows != len(ds.Train) || m.Cols != 20 {
		t.Fatalf("matrix %d×%d", m.Rows, m.Cols)
	}
	for j := 0; j < m.Cols; j++ {
		if m.At(0, j) != ds.Train[0].Features[j] {
			t.Fatal("matrix row mismatch")
		}
	}
}

func TestFeaturesMatrixEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FeaturesMatrix(nil)
}

func TestLabelHelpers(t *testing.T) {
	samples := []WiFiSample{
		{Building: 2, Floor: 3, Pos: geo.Point{X: 1, Y: 2}},
		{Building: -1, Floor: 0, Pos: geo.Point{X: 3, Y: 4}},
	}
	if b := BuildingLabels(samples); b[0] != 2 || b[1] != 0 {
		t.Fatalf("buildings=%v", b)
	}
	if f := FloorLabels(samples); f[0] != 3 || f[1] != 0 {
		t.Fatalf("floors=%v", f)
	}
	if p := Positions(samples); p[0] != (geo.Point{X: 1, Y: 2}) {
		t.Fatalf("positions=%v", p)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	ds := SynthUJI(cfg)
	var buf bytes.Buffer
	if err := SaveUJICSV(&buf, ds.Train[:10]); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadUJICSV(&buf, cfg.Radio.DetectionThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 10 {
		t.Fatalf("loaded %d samples", len(loaded))
	}
	for i, s := range loaded {
		orig := ds.Train[i]
		if s.Building != orig.Building || s.Floor != orig.Floor {
			t.Fatal("labels corrupted")
		}
		if math.Abs(s.Pos.X-orig.Pos.X) > 1e-9 || math.Abs(s.Pos.Y-orig.Pos.Y) > 1e-9 {
			t.Fatal("position corrupted")
		}
		for j := range s.RSSI {
			if math.Abs(s.RSSI[j]-orig.RSSI[j]) > 1e-9 {
				t.Fatal("RSSI corrupted")
			}
			if math.Abs(s.Features[j]-orig.Features[j]) > 1e-9 {
				t.Fatal("features not renormalized identically")
			}
		}
	}
}

func TestLoadUJICSVRealFormatWithExtraColumns(t *testing.T) {
	// The published dataset has metadata columns we must skip.
	csvText := "WAP001,WAP002,LONGITUDE,LATITUDE,FLOOR,BUILDINGID,SPACEID,USERID\n" +
		"-60,100,12.5,99.25,2,1,101,7\n"
	samples, err := LoadUJICSV(strings.NewReader(csvText), -104)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Fatalf("samples=%d", len(samples))
	}
	s := samples[0]
	if s.RSSI[0] != -60 || s.RSSI[1] != radio.NotDetected {
		t.Fatalf("RSSI=%v", s.RSSI)
	}
	if s.Pos != (geo.Point{X: 12.5, Y: 99.25}) || s.Floor != 2 || s.Building != 1 {
		t.Fatalf("metadata wrong: %+v", s)
	}
	if s.Features[1] != 0 {
		t.Fatal("undetected WAP must normalize to 0")
	}
}

func TestLoadUJICSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing columns": "A,B\n1,2\n",
		"bad rssi":        "WAP001,LONGITUDE,LATITUDE,FLOOR,BUILDINGID\nxx,1,2,0,0\n",
		"bad floor":       "WAP001,LONGITUDE,LATITUDE,FLOOR,BUILDINGID\n-50,1,2,zz,0\n",
		"bad longitude":   "WAP001,LONGITUDE,LATITUDE,FLOOR,BUILDINGID\n-50,aa,2,0,0\n",
	}
	for name, text := range cases {
		if _, err := LoadUJICSV(strings.NewReader(text), -104); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestSaveUJICSVEmptyErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveUJICSV(&buf, nil); err == nil {
		t.Fatal("expected error for empty sample set")
	}
}

func TestGenerateBadConfigPanics(t *testing.T) {
	cfg := tinyConfig()
	cfg.SamplesPerRef = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SynthUJI(cfg)
}

func TestDistinctPositionsNearPaperScale(t *testing.T) {
	// The full-size preset should produce on the order of the real
	// dataset's ≈933 distinct survey positions.
	cfg := DefaultUJIConfig()
	cfg.SamplesPerRef = 1
	cfg.TestSamplesPerRef = 0
	ds := SynthUJI(cfg)
	type xy struct{ x, y float64 }
	uniq := map[xy]bool{}
	for _, s := range ds.Train {
		uniq[xy{s.Pos.X, s.Pos.Y}] = true
	}
	for _, s := range ds.Val {
		uniq[xy{s.Pos.X, s.Pos.Y}] = true
	}
	if len(uniq) < 150 || len(uniq) > 2000 {
		t.Fatalf("distinct positions %d far from paper scale", len(uniq))
	}
}
