module noble

// 1.23 minimum for the synchronous timer Stop/Reset semantics the
// batcher's timer reuse relies on (pre-1.23 async timers can deliver a
// stale fire after Stop+drain+Reset).
go 1.23
