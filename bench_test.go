package noble

import (
	"io"
	"testing"

	"noble/internal/experiments"
)

// benchExperiment runs one paper experiment per benchmark iteration at the
// Small preset (the Full preset's numbers are recorded in EXPERIMENTS.md
// via cmd/noble-bench). Reported ns/op is the wall time of a complete
// dataset-generation + training + evaluation cycle for that table/figure.
func benchExperiment(b *testing.B, run func(experiments.Preset) *experiments.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		report := run(experiments.Small)
		if len(report.Rows) == 0 && len(report.Artifacts) == 0 {
			b.Fatal("experiment produced an empty report")
		}
		if err := report.Fprint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1UJINoble regenerates Table I: NObLe's building/floor/
// class accuracies and position error on the UJI-like campus.
func BenchmarkTable1UJINoble(b *testing.B) { benchExperiment(b, experiments.RunTable1) }

// BenchmarkTable2Baselines regenerates Table II: Deep Regression,
// Regression Projection, Isomap and LLE regression vs NObLe.
func BenchmarkTable2Baselines(b *testing.B) { benchExperiment(b, experiments.RunTable2) }

// BenchmarkIPINComparison regenerates the §IV-B IPIN2016 comparison.
func BenchmarkIPINComparison(b *testing.B) { benchExperiment(b, experiments.RunIPIN) }

// BenchmarkTable3IMU regenerates Table III: IMU tracking errors.
func BenchmarkTable3IMU(b *testing.B) { benchExperiment(b, experiments.RunTable3) }

// BenchmarkFigure1GroundTruth regenerates Fig. 1: the ground-truth
// structure of the survey locations.
func BenchmarkFigure1GroundTruth(b *testing.B) { benchExperiment(b, experiments.RunFigure1) }

// BenchmarkFigure4Scatter regenerates Fig. 4: predicted-coordinate
// structure for all four models.
func BenchmarkFigure4Scatter(b *testing.B) { benchExperiment(b, experiments.RunFigure4) }

// BenchmarkFigure5IMUScatter regenerates Fig. 5: IMU prediction structure.
func BenchmarkFigure5IMUScatter(b *testing.B) { benchExperiment(b, experiments.RunFigure5) }

// BenchmarkEnergyWiFi regenerates §IV-C: Wi-Fi inference energy on the
// TX2-class device model.
func BenchmarkEnergyWiFi(b *testing.B) { benchExperiment(b, experiments.RunEnergyWiFi) }

// BenchmarkEnergyIMU regenerates §V-D: the IMU energy budget and the ≈27×
// GPS ratio.
func BenchmarkEnergyIMU(b *testing.B) { benchExperiment(b, experiments.RunEnergyIMU) }

// BenchmarkAblationTau regenerates ablation A1: quantization granularity.
func BenchmarkAblationTau(b *testing.B) { benchExperiment(b, experiments.RunAblationTau) }

// BenchmarkAblationHeads regenerates ablation A2: head configuration.
func BenchmarkAblationHeads(b *testing.B) { benchExperiment(b, experiments.RunAblationHeads) }

// BenchmarkAblationNoise regenerates ablation A3: input-noise robustness.
func BenchmarkAblationNoise(b *testing.B) { benchExperiment(b, experiments.RunAblationNoise) }

// BenchmarkAblationIMUArch regenerates ablation A4: the IMU location-
// module design.
func BenchmarkAblationIMUArch(b *testing.B) { benchExperiment(b, experiments.RunAblationIMUArch) }

// BenchmarkOnlineTracking regenerates extension X1: greedy vs
// map-constrained Viterbi trajectory decoding.
func BenchmarkOnlineTracking(b *testing.B) { benchExperiment(b, experiments.RunOnlineTracking) }

// BenchmarkWiFiInference measures single-fingerprint inference latency of
// a trained NObLe model — the quantity behind the paper's 2 ms claim.
func BenchmarkWiFiInference(b *testing.B) {
	ds := SynthIPIN(SmallIPINConfig())
	cfg := DefaultWiFiConfig()
	cfg.Hidden = []int{64, 64}
	cfg.Epochs = 2
	model := TrainWiFi(ds, cfg)
	features := ds.Test[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(features)
	}
}

// BenchmarkIMUInference measures single-path inference latency of the
// tracking model — behind the paper's 5 ms claim.
func BenchmarkIMUInference(b *testing.B) {
	net := NewCampusNetwork(6)
	dataCfg := DefaultIMUDataConfig()
	dataCfg.ReadingsPerSegment = 64
	dataCfg.TotalSegments = 60
	track := SynthesizeIMU(net, dataCfg, 1)
	ds := BuildIMUPaths(track, IMUPathConfig{
		NumPaths: 200, MaxLen: 8, Frames: 4,
		TrainFrac: 0.8, ValFrac: 0.1, Seed: 2,
	})
	cfg := DefaultIMUConfig()
	cfg.Hidden = []int{48, 48}
	cfg.Tau = 1.0
	cfg.Epochs = 2
	model := TrainIMU(ds, cfg)
	paths := ds.Test[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.PredictPaths(paths)
	}
}

// BenchmarkErrorCDF regenerates extension X2: the error CDF comparison.
func BenchmarkErrorCDF(b *testing.B) { benchExperiment(b, experiments.RunErrorCDF) }
