#!/usr/bin/env bash
# Accuracy-gate check for the int8 serving tier: the publish-blocking
# gate must hold at BOTH enforcement points (see DESIGN.md §9).
#
#  1. Positive: the tiny demo bundles — which include int8 twins whose
#     calibration ran the train-time gate — all pass the load-time
#     recheck (noble-serve -check-bundles exits 0).
#  2. Train-time negative: noble-train -precision int8 with a
#     calibration that destroys accuracy (0.5th-percentile clipping)
#     must refuse to publish anything.
#  3. Load-time negative: hand-corrupting a published bundle's
#     act_scales (ci/corruptcalib) must make -check-bundles exit 1 —
#     the registry refuses the bundle even though the manifest and
#     weights are untouched.
#  4. Recovery: restoring the original calibration.json clears the
#     failure (the registry stamp covers every payload file, so the
#     fix is noticed).
#
# Usage: ci/accuracy-gate.sh [workdir]
set -euo pipefail

work="${1:-$(mktemp -d)}"
made_work=""
[ -n "${1:-}" ] || made_work="$work"
bin="$work/bin"
models="$work/models"
mkdir -p "$bin" "$models"

cleanup() {
    [ -n "$made_work" ] && rm -rf "$made_work" || true
}
trap cleanup EXIT

fail() {
    echo "FAIL: $1"
    for log in "$work"/*.log; do
        [ -f "$log" ] || continue
        echo "---- tail of $log ----"
        tail -n 20 "$log" | sed 's/^/   /'
    done
    exit 1
}

echo "== building noble-serve, noble-train, corruptcalib"
go build -o "$bin/" ./cmd/noble-serve ./cmd/noble-train ./ci/corruptcalib

echo "== 1. train tiny demo bundles (int8 twins run the train-time gate) and check-load them"
"$bin/noble-serve" -demo-tiny -models "$models" -check-bundles \
    >"$work/check1.log" 2>&1 || fail "freshly published bundles did not pass -check-bundles"
grep -q "bundle check passed" "$work/check1.log" || fail "no 'bundle check passed' in output"
[ -f "$models/demo-wifi-int8/calibration.json" ] || fail "demo-wifi-int8 has no calibration.json"

echo "== 2. train-time gate must block a publish with destroyed calibration"
if "$bin/noble-train" -dataset ipin -size small -epochs 2 \
    -precision int8 -calib-method percentile -calib-percentile 0.5 \
    -bundle "$work/blocked-models" >"$work/train.log" 2>&1; then
    fail "noble-train published an int8 model through a 0.5th-percentile calibration"
fi
grep -q "int8 publish blocked" "$work/train.log" \
    || fail "train exited nonzero but not with the publish-blocked message"
[ ! -d "$work/blocked-models" ] \
    || fail "gate reported blocked but a bundle directory was still created"

echo "== 3. load-time gate must refuse a hand-corrupted published bundle"
cp "$models/demo-wifi-int8/calibration.json" "$work/calibration.json.good"
"$bin/corruptcalib" -bundle "$models/demo-wifi-int8" -factor 1e6
if "$bin/noble-serve" -models "$models" -check-bundles >"$work/check2.log" 2>&1; then
    fail "-check-bundles passed with corrupted act_scales"
fi
grep -q "accuracy gate failed" "$work/check2.log" \
    || fail "corrupted bundle was refused, but not by the accuracy gate"

echo "== 4. restoring the calibration clears the failure"
cp "$work/calibration.json.good" "$models/demo-wifi-int8/calibration.json"
"$bin/noble-serve" -models "$models" -check-bundles \
    >"$work/check3.log" 2>&1 || fail "restored bundle still refused"

echo "PASS: accuracy gate enforced at train time and registry load, and recovery works"
