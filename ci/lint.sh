#!/usr/bin/env bash
# Static-analysis gate: the same checks CI's lint job runs, runnable
# locally before a push. Ordered cheapest-first so the common failure
# (an unformatted file) costs seconds, not a full type-check.
#
#   gofmt        formatting (whole tree, fixtures included)
#   go vet       the stock toolchain analyzers
#   noble-vet    the repo's own invariant suite (internal/vetrules) —
#                must be clean on the tree AND must still refuse the
#                three reconstructed historical bugs, so a broken
#                analyzer cannot silently pass everything
#   staticcheck  bug-finding (SA*) + simplification/style per
#                staticcheck.conf — skipped with a notice if the binary
#                is not installed (CI always has it)
#   govulncheck  known-vuln scan over the call graph — likewise
#                optional locally, required in CI
#
# Usage: ci/lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
    echo "gofmt needed on:"
    echo "$out"
    fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== noble-vet (internal/vetrules invariant suite)"
mkdir -p build
go build -o build/noble-vet ./cmd/noble-vet
if ! build/noble-vet ./...; then
    echo "noble-vet found violations (see docs/LINT.md for the rules and the //vet:ignore syntax)"
    fail=1
fi

# Self-test: each reconstructed historical bug must still trip the
# suite. Exit code 1 is "findings reported" — anything else (0 = the
# analyzer rotted, 2 = the fixture no longer loads) is a failure.
for fixture in journalock/regress closedflag/regress readonlyinfer/regress; do
    dir="internal/vetrules/testdata/src/$fixture"
    set +e
    build/noble-vet "$dir" >/dev/null 2>&1
    rc=$?
    set -e
    if [ "$rc" -ne 1 ]; then
        echo "noble-vet self-test: $fixture exited $rc, want 1 (the reconstructed bug must keep tripping the suite)"
        fail=1
    fi
done

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./... || fail=1
else
    echo "   staticcheck not installed; skipping (CI runs it — go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"
fi

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./... || fail=1
else
    echo "   govulncheck not installed; skipping (CI runs it — go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

if [ "$fail" -ne 0 ]; then
    echo "FAIL: lint"
    exit 1
fi
echo "PASS: lint"
