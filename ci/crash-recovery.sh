#!/usr/bin/env bash
# Crash-recovery smoke test: run noble-serve with a durable session
# journal, SIGKILL it under tracking load, restart it, and assert that
# sessions were restored (recovered-session gauge > 0) and that
# noble-replay reproduces the recorded trajectories with zero
# divergence. Exercises the acceptance path of the durability layer end
# to end with real processes and a real kill -9.
#
# Usage: ci/crash-recovery.sh [workdir]
set -euo pipefail

work="${1:-$(mktemp -d)}"
bin="$work/bin"
models="$work/models"
state="$work/state"
addr="127.0.0.1:18097"
mkdir -p "$bin" "$models"
rm -rf "$state"

echo "== building binaries into $bin"
go build -o "$bin/" ./cmd/noble-serve ./cmd/noble-loadgen ./cmd/noble-replay

serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT

wait_healthy() {
    for _ in $(seq 1 240); do
        if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.5
    done
    echo "server never became healthy"; cat "$work/serve.log" || true; return 1
}

echo "== first run: train tiny demo models (seconds) and serve with -state-dir"
"$bin/noble-serve" -demo-tiny -models "$models" -state-dir "$state" \
    -fsync interval -addr "$addr" >"$work/serve.log" 2>&1 &
serve_pid=$!
wait_healthy

echo "== tracking load, then SIGKILL mid-flight"
"$bin/noble-loadgen" -url "http://$addr" -mode track -concurrency 16 \
    -duration 6s -seed 3 >"$work/loadgen.log" 2>&1 &
load_pid=$!
sleep 3
kill -9 "$serve_pid"
echo "   killed noble-serve (pid $serve_pid) with SIGKILL"
wait "$load_pid" || true   # the generator rides out the dead server, reporting conn errors
serve_pid=""
grep -E "requests|errors" "$work/loadgen.log" | sed 's/^/   /'

echo "== restart: sessions must come back before the listener opens"
"$bin/noble-serve" -models "$models" -state-dir "$state" \
    -fsync interval -addr "$addr" >"$work/serve2.log" 2>&1 &
serve_pid=$!
wait_healthy
grep "session journal" "$work/serve2.log" | sed 's/^/   /'

recovered=$(curl -fsS "http://$addr/metrics" | awk '/^noble_journal_recovered_sessions /{print $2}')
echo "   noble_journal_recovered_sessions = ${recovered:-MISSING}"
if [ -z "${recovered:-}" ] || [ "$recovered" -le 0 ]; then
    echo "FAIL: no sessions recovered after SIGKILL"; exit 1
fi

kill -9 "$serve_pid"; serve_pid=""

echo "== replay the recorded journal: zero divergence expected"
"$bin/noble-replay" -journal "$state" -models "$models" | sed 's/^/   /'

echo "PASS: crash recovery restored $recovered session(s); replay reproduced the recorded run"
