#!/usr/bin/env bash
# Crash-recovery smoke test: run noble-serve with a durable session
# journal, SIGKILL it under tracking load, restart it, and assert that
# sessions were restored (recovered-session gauge > 0) and that
# noble-replay reproduces the recorded trajectories with zero
# divergence. Exercises the acceptance path of the durability layer end
# to end with real processes and a real kill -9.
#
# Usage: ci/crash-recovery.sh [workdir]
set -euo pipefail

work="${1:-$(mktemp -d)}"
made_work=""
[ -n "${1:-}" ] || made_work="$work"
bin="$work/bin"
models="$work/models"
state="$work/state"
mkdir -p "$bin" "$models"
rm -rf "$state"

serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null || true
    # A mktemp run cleans up fully (the state dir lives under it). With a
    # caller-chosen workdir everything is KEPT — on a failure the WAL is
    # the artifact that reproduces the bug through noble-replay.
    [ -n "$made_work" ] && rm -rf "$made_work" || true
}
trap cleanup EXIT

# fail prints the reason plus the serve log tail — the bare exit code of
# a dead server tells a CI reader nothing.
fail() {
    echo "FAIL: $1"
    for log in "$work"/serve*.log; do
        [ -f "$log" ] || continue
        echo "---- tail of $log ----"
        tail -n 40 "$log" | sed 's/^/   /'
    done
    exit 1
}

# wait_listening blocks until the serve process logs its resolved listen
# address (it binds port 0, so the kernel picks a free one — no
# hard-coded port to collide with a parallel CI job) and the health check
# answers; sets $addr.
wait_listening() {
    local log="$1"
    addr=""
    for _ in $(seq 1 240); do
        # The server logs logfmt: `... level=INFO msg=listening addr=127.0.0.1:PORT`
        addr=$(sed -n 's/.*msg=listening addr=\([^ ]*\).*/\1/p' "$log" | head -n1)
        if [ -n "$addr" ] && curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$serve_pid" 2>/dev/null || fail "noble-serve exited during startup"
        sleep 0.5
    done
    fail "server never became healthy"
}

echo "== building binaries into $bin"
go build -o "$bin/" ./cmd/noble-serve ./cmd/noble-loadgen ./cmd/noble-replay

echo "== first run: train tiny demo models (seconds) and serve with -state-dir"
"$bin/noble-serve" -demo-tiny -models "$models" -state-dir "$state" \
    -fsync interval -addr 127.0.0.1:0 >"$work/serve.log" 2>&1 &
serve_pid=$!
wait_listening "$work/serve.log"
echo "   serving on $addr"

echo "== tracking load, then SIGKILL mid-flight"
"$bin/noble-loadgen" -url "http://$addr" -mode track -concurrency 16 \
    -duration 6s -seed 3 >"$work/loadgen.log" 2>&1 &
load_pid=$!
sleep 3
kill -9 "$serve_pid"
echo "   killed noble-serve (pid $serve_pid) with SIGKILL"
wait "$load_pid" || true   # the generator rides out the dead server, reporting conn errors
serve_pid=""
grep -E "requests|errors" "$work/loadgen.log" | sed 's/^/   /'

echo "== restart: sessions must come back before the listener opens"
"$bin/noble-serve" -models "$models" -state-dir "$state" \
    -fsync interval -addr 127.0.0.1:0 >"$work/serve2.log" 2>&1 &
serve_pid=$!
wait_listening "$work/serve2.log"
grep "session journal" "$work/serve2.log" | sed 's/^/   /'

recovered=$(curl -fsS "http://$addr/metrics" | awk '/^noble_journal_recovered_sessions /{print $2}')
echo "   noble_journal_recovered_sessions = ${recovered:-MISSING}"
if [ -z "${recovered:-}" ] || [ "$recovered" -le 0 ]; then
    fail "no sessions recovered after SIGKILL"
fi

kill -9 "$serve_pid"; serve_pid=""

echo "== replay the recorded journal: zero divergence expected"
"$bin/noble-replay" -journal "$state" -models "$models" | sed 's/^/   /' \
    || fail "replay diverged or errored"

echo "PASS: crash recovery restored $recovered session(s); replay reproduced the recorded run"
