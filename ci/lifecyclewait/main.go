// Command lifecyclewait polls a running noble-serve's /debug/lifecycle
// view until one model's deployment reaches an expected shape — the
// assertion primitive of ci/lifecycle-gate.sh. Encoding the predicate
// here keeps the gate script free of fragile shell JSON parsing, and
// polling (instead of fixed sleeps) makes the gate fast on fast
// machines and patient on loaded CI runners.
//
// On success it prints one line describing the matched deployment:
//
//	active=<bundle-id> staged=<stage>:<bundle-id>
//
// (staged=- when nothing is staged), so the calling script can capture
// bundle identities and compare them across gate phases.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"noble/internal/serve"
)

// lifecycleView is the shape of /debug/lifecycle we assert on.
type lifecycleView struct {
	Models []serve.ModelInfo `json:"models"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lifecyclewait: ")
	url := flag.String("url", "", "noble-serve base URL (the main listener; /debug/lifecycle lives there)")
	model := flag.String("model", "demo-wifi", "model name to watch")
	stage := flag.String("stage", "", "expected staged-generation state: shadow, canary, any (something staged), or none (nothing staged); empty skips the check")
	activeBundle := flag.String("active-bundle", "", "expected active bundle id; prefix with ! to assert anything-but; empty skips the check")
	minSamples := flag.Int64("min-samples", 0, "require the staged generation to have accumulated at least this much evidence (mirrored rows + re-anchor scores)")
	timeout := flag.Duration("timeout", 60*time.Second, "give up after this long")
	interval := flag.Duration("interval", 150*time.Millisecond, "poll interval")
	flag.Parse()

	if *url == "" {
		log.Fatal("-url is required")
	}
	switch *stage {
	case "", "shadow", "canary", "any", "none":
	default:
		log.Fatalf("unknown -stage %q (want shadow, canary, any, or none)", *stage)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(*timeout)
	last := "no successful poll yet"
	for {
		active, staged, err := poll(client, *url, *model)
		if err != nil {
			last = err.Error()
		} else {
			last = describe(active, staged)
			if matches(active, staged, *stage, *activeBundle, *minSamples) {
				fmt.Println(last)
				return
			}
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "lifecyclewait: timed out after %v waiting for model %s (stage=%q active-bundle=%q min-samples=%d); last state: %s\n",
				*timeout, *model, *stage, *activeBundle, *minSamples, last)
			os.Exit(1)
		}
		time.Sleep(*interval)
	}
}

// poll fetches the lifecycle view once and splits out the watched
// model's active and staged generations (either may be nil).
func poll(client *http.Client, url, model string) (active, staged *serve.ModelInfo, err error) {
	resp, err := client.Get(strings.TrimRight(url, "/") + "/debug/lifecycle")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("/debug/lifecycle: %s", resp.Status)
	}
	var view lifecycleView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, nil, fmt.Errorf("decoding /debug/lifecycle: %w", err)
	}
	for i := range view.Models {
		m := &view.Models[i]
		if m.Name != model {
			continue
		}
		switch m.Stage {
		case "active":
			active = m
		case "shadow", "canary":
			staged = m
		}
	}
	return active, staged, nil
}

func matches(active, staged *serve.ModelInfo, stage, activeBundle string, minSamples int64) bool {
	switch stage {
	case "none":
		if staged != nil {
			return false
		}
	case "any":
		if staged == nil {
			return false
		}
	case "shadow", "canary":
		if staged == nil || staged.Stage != stage {
			return false
		}
	}
	if activeBundle != "" {
		if active == nil {
			return false
		}
		if want, neg := strings.CutPrefix(activeBundle, "!"); neg {
			if active.BundleID == want {
				return false
			}
		} else if active.BundleID != want {
			return false
		}
	}
	if minSamples > 0 {
		if staged == nil || staged.Lifecycle == nil {
			return false
		}
		if staged.Lifecycle.MirroredRows+staged.Lifecycle.ReAnchorScores < minSamples {
			return false
		}
	}
	return true
}

func describe(active, staged *serve.ModelInfo) string {
	a := "-"
	if active != nil {
		a = active.BundleID
	}
	s := "-"
	if staged != nil {
		s = staged.Stage + ":" + staged.BundleID
	}
	return fmt.Sprintf("active=%s staged=%s", a, s)
}
