// Command corruptcalib simulates post-publish bundle damage for the CI
// accuracy-gate check (ci/accuracy-gate.sh): it multiplies every entry
// of a bundle's act_scales by a factor and rewrites calibration.json in
// place. It deliberately edits the JSON generically — the way a buggy
// deploy script or a hand edit would — rather than going through the
// serve package's typed writer, so the load-time gate is exercised
// against genuinely foreign bytes.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"path/filepath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corruptcalib: ")
	bundle := flag.String("bundle", "", "bundle directory containing calibration.json")
	factor := flag.Float64("factor", 1e6, "multiply every activation scale by this")
	flag.Parse()
	if *bundle == "" {
		log.Fatal("-bundle is required")
	}

	path := filepath.Join(*bundle, "calibration.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	scales, ok := doc["act_scales"].([]any)
	if !ok || len(scales) == 0 {
		log.Fatalf("%s has no act_scales array", path)
	}
	for i, v := range scales {
		f, ok := v.(float64)
		if !ok {
			log.Fatalf("act_scales[%d] is not a number: %v", i, v)
		}
		scales[i] = f * *factor
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("encoding: %v", err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		log.Fatalf("writing: %v", err)
	}
	log.Printf("multiplied %d scale(s) in %s by %g", len(scales), path, *factor)
}
