#!/usr/bin/env bash
# Lifecycle gate: end-to-end proof of the deployment pipeline with real
# processes and real traffic. One noble-serve run with a durable journal
# walks through three phases:
#
#   A. a DEGRADED bundle (untrained weights, tight policy) is published:
#      it must enter shadow, advance to canary on mirrored evidence, and
#      be auto-rolled back when its live divergence breaks policy — the
#      active generation keeps serving, untouched.
#   B. a GOOD bundle (retrained, loose policy) is published: it must
#      ride shadow → canary → active with no human in the loop.
#   C. a third bundle capped at target=canary is staged, the server is
#      SIGKILLed mid-stage, and the restart must resume the canary at
#      the same stage with the same bundle identity while the promoted
#      active keeps serving from its archive.
#
# Phase transitions are asserted through /debug/lifecycle (via
# ci/lifecyclewait, which encodes the JSON predicates) and the
# noble_lifecycle_* counters on /metrics. Bundles are produced by
# ci/publishgen. See DESIGN.md §10.
#
# Usage: ci/lifecycle-gate.sh [workdir]
set -euo pipefail

work="${1:-$(mktemp -d)}"
made_work=""
[ -n "${1:-}" ] || made_work="$work"
bin="$work/bin"
models="$work/models"
state="$work/state"
mkdir -p "$bin" "$models"
rm -rf "$state"

serve_pid=""
load_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null || true
    [ -n "$load_pid" ] && kill "$load_pid" 2>/dev/null || true
    # A mktemp run cleans up fully. With a caller-chosen workdir
    # everything is KEPT — on a failure the bundles, journal, and logs
    # are the artifacts that reproduce the bug.
    [ -n "$made_work" ] && rm -rf "$made_work" || true
}
trap cleanup EXIT

fail() {
    echo "FAIL: $1"
    for log in "$work"/serve*.log; do
        [ -f "$log" ] || continue
        echo "---- tail of $log ----"
        tail -n 40 "$log" | sed 's/^/   /'
    done
    exit 1
}

# wait_listening blocks until the serve process logs its resolved listen
# address (it binds port 0, so the kernel picks a free one) and the
# health check answers; sets $addr.
wait_listening() {
    local log="$1"
    addr=""
    for _ in $(seq 1 240); do
        addr=$(sed -n 's/.*msg=listening addr=\([^ ]*\).*/\1/p' "$log" | head -n1)
        if [ -n "$addr" ] && curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$serve_pid" 2>/dev/null || fail "noble-serve exited during startup"
        sleep 0.5
    done
    fail "server never became healthy"
}

# counter scrapes one exact metric line (name{labels}) off /metrics.
counter() {
    curl -fsS "http://$addr/metrics" | awk -v m="$1" '$1==m {print $2}'
}

echo "== building binaries into $bin"
go build -o "$bin/" ./cmd/noble-serve ./cmd/noble-loadgen ./ci/publishgen ./ci/lifecyclewait

# Fast-converging lifecycle settings: mirror every request, evaluate
# twice a second, poll the bundle dir four times a second. The policy
# windows (40 samples) come from publishgen's defaults; at the paced
# 200 q/s below a window fills in well under a second.
serve_flags=(-models "$models" -state-dir "$state" -fsync interval -addr 127.0.0.1:0
    -reload 250ms -mirror-rate 1 -lifecycle-tick 500ms)

echo "== boot: train tiny demo models and serve with the full pipeline on"
"$bin/noble-serve" -demo-tiny "${serve_flags[@]}" >"$work/serve.log" 2>&1 &
serve_pid=$!
wait_listening "$work/serve.log"
echo "   serving on $addr"

base=$("$bin/lifecyclewait" -url "http://$addr" -model demo-wifi -stage none -timeout 10s) \
    || fail "no clean demo-wifi deployment after boot"
base_active=${base#active=}; base_active=${base_active%% *}
echo "   baseline active bundle: $base_active"

echo "== steady localize load (mirror source for every phase)"
"$bin/noble-loadgen" -url "http://$addr" -mode localize -model demo-wifi \
    -concurrency 8 -qps 200 -duration 600s -seed 7 >"$work/loadgen.log" 2>&1 &
load_pid=$!

echo "== phase A: degraded bundle must be auto-rolled back"
"$bin/publishgen" -models "$models" -name demo-wifi -variant degraded -seed-skew 2 \
    2>&1 | sed 's/^/   /'
"$bin/lifecyclewait" -url "http://$addr" -model demo-wifi -stage any -timeout 60s >/dev/null \
    || fail "degraded bundle was never staged"
rolled=$("$bin/lifecyclewait" -url "http://$addr" -model demo-wifi \
    -stage none -active-bundle "$base_active" -timeout 120s) \
    || fail "degraded bundle was not rolled back (or the active generation changed)"
echo "   rolled back; $rolled"
# The canary transition proves the shadow really accumulated its
# mirrored-evidence window (advance is gated on sample count alone);
# the retired transition proves the rollback was the controller's.
canaries=$(counter 'noble_lifecycle_transitions_total{model="demo-wifi",to="canary"}')
retired=$(counter 'noble_lifecycle_transitions_total{model="demo-wifi",to="retired"}')
echo "   transitions so far: to=canary ${canaries:-0}, to=retired ${retired:-0}"
[ "${canaries:-0}" -ge 1 ] || fail "degraded bundle never reached canary (shadow evidence missing)"
[ "${retired:-0}" -ge 1 ] || fail "no retirement transition recorded for the rollback"

echo "== phase B: good bundle must be auto-promoted"
"$bin/publishgen" -models "$models" -name demo-wifi -variant good -seed-skew 1 \
    2>&1 | sed 's/^/   /'
promoted=$("$bin/lifecyclewait" -url "http://$addr" -model demo-wifi \
    -stage none -active-bundle "!$base_active" -timeout 120s) \
    || fail "good bundle was not promoted to active"
new_active=${promoted#active=}; new_active=${new_active%% *}
echo "   promoted; active bundle now $new_active"
activations=$(counter 'noble_lifecycle_transitions_total{model="demo-wifi",to="active"}')
[ "${activations:-0}" -ge 2 ] || fail "promotion did not register an activation transition"

echo "== phase C: canary-capped bundle must survive kill -9 at its stage"
"$bin/publishgen" -models "$models" -name demo-wifi -variant good -seed-skew 3 \
    -target canary 2>&1 | sed 's/^/   /'
pre=$("$bin/lifecyclewait" -url "http://$addr" -model demo-wifi \
    -stage canary -min-samples 40 -timeout 120s) \
    || fail "capped bundle never reached canary with mirrored evidence"
pre_staged=${pre##*staged=}
echo "   holding at $pre_staged; killing noble-serve (pid $serve_pid) with SIGKILL"
kill -9 "$serve_pid"; serve_pid=""
kill "$load_pid" 2>/dev/null || true; wait "$load_pid" 2>/dev/null || true; load_pid=""

echo "== restart: stages must come back from the journal"
"$bin/noble-serve" "${serve_flags[@]}" >"$work/serve2.log" 2>&1 &
serve_pid=$!
wait_listening "$work/serve2.log"
post=$("$bin/lifecyclewait" -url "http://$addr" -model demo-wifi \
    -stage canary -active-bundle "$new_active" -timeout 30s) \
    || fail "canary stage (or the promoted active) did not survive the restart"
post_staged=${post##*staged=}
if [ "$pre_staged" != "$post_staged" ]; then
    fail "staged generation changed identity across the crash: $pre_staged -> $post_staged"
fi
echo "   resumed at $post_staged with active $new_active intact"

kill -9 "$serve_pid"; serve_pid=""

echo "PASS: degraded canary auto-rolled back, good canary auto-promoted, stages survived SIGKILL"
