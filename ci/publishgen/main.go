// Command publishgen republishes an already-trained Wi-Fi bundle as a
// new generation with a chosen quality variant and an explicit
// lifecycle policy — the bundle source for ci/lifecycle-gate.sh.
//
// It reads the bundle's manifest, regenerates the embedded synthetic
// survey, retrains a variant of the model, rewrites the bundle in
// place (every file gets a fresh mtime, so the watching registry's
// stamp changes and the new generation enters shadow), and writes the
// lifecycle.json sidecar carrying the promotion policy the gate wants
// enforced.
//
// Variants:
//
//   - good: the bundle's own training recipe with a shifted seed —
//     comparable accuracy, so mirror divergence from the serving
//     generation stays small and a loose policy promotes it.
//   - degraded: one epoch at a vanishing learning rate — the network
//     stays at its random initialization and spreads probability almost
//     uniformly over the cell grid, so its predictions collapse toward
//     the survey centroid and mirror divergence from the serving
//     generation is large. A tight policy must roll it back.
//
// The policy flags are written verbatim; they default to small windows
// so the gate converges in seconds under modest load.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"path/filepath"
	"time"

	"noble/internal/core"
	"noble/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("publishgen: ")
	models := flag.String("models", "", "bundle directory noble-serve watches")
	name := flag.String("name", "demo-wifi", "wifi bundle to republish")
	variant := flag.String("variant", "good", "good (retrained, comparable quality) or degraded (untrained weights, large divergence)")
	target := flag.String("target", "active", "lifecycle target stage: shadow, canary, or active")
	seedSkew := flag.Int64("seed-skew", 1, "added to the bundle's training seed so the republished weights differ from the serving generation")
	minShadow := flag.Int64("min-shadow", 40, "policy: mirrored samples a shadow needs before canary")
	minCanary := flag.Int64("min-canary", 40, "policy: canary evaluation window, in samples")
	maxErr := flag.Float64("max-error-delta", 0, "policy: max live error delta vs active, meters (0 = per-variant default: good 500, degraded 0.5)")
	maxP99 := flag.Float64("max-p99-delta", 10000, "policy: max p99 pass-latency delta, ms (loose by default — the gate exercises the error path)")
	flag.Parse()

	if *models == "" {
		log.Fatal("-models is required")
	}
	switch *target {
	case "shadow", "canary", "active":
	default:
		log.Fatalf("unknown -target %q (want shadow, canary, or active)", *target)
	}
	if *maxErr == 0 {
		switch *variant {
		case "good":
			*maxErr = 500
		case "degraded":
			*maxErr = 0.5
		}
	}

	raw, err := os.ReadFile(filepath.Join(*models, *name, "manifest.json"))
	if err != nil {
		log.Fatalf("reading bundle manifest: %v", err)
	}
	var man serve.Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		log.Fatalf("decoding bundle manifest: %v", err)
	}
	if man.Kind != serve.KindWiFi || man.WiFi == nil {
		log.Fatalf("bundle %s is kind %q; publishgen only republishes wifi bundles", *name, man.Kind)
	}

	ds, err := man.WiFi.BuildWiFiDataset()
	if err != nil {
		log.Fatalf("rebuilding survey: %v", err)
	}
	// The manifest keeps the bundle's real recipe (plus the seed skew)
	// even for the degraded variant: successive publishgen runs read the
	// previous run's manifest, and a persisted sabotage recipe would
	// silently degrade every later "good" publish. The overrides below
	// are training-only; they don't change the architecture the loader
	// rebuilds from the manifest.
	cfg := man.WiFi.Config
	cfg.Seed += *seedSkew
	train := cfg
	switch *variant {
	case "good":
	case "degraded":
		// One epoch at a vanishing learning rate: a valid training
		// config (the model constructor rejects Epochs <= 0) whose
		// weights stay at their random initialization. No NaNs — a
		// diverged-loss degradation would poison the divergence mean
		// with NaN and the policy comparison would never fire.
		train.Epochs = 1
		train.LR = 1e-12
		train.LRDecay = 1
	default:
		log.Fatalf("unknown -variant %q (want good or degraded)", *variant)
	}

	start := time.Now()
	model := core.TrainWiFi(ds, train)
	log.Printf("%s variant of %s: %d classes, trained in %v (seed %d, epochs %d)",
		*variant, *name, model.Classes(), time.Since(start).Round(time.Millisecond), train.Seed, train.Epochs)

	man.WiFi.Config = cfg
	spec := serve.LifecycleSpec{
		Target: *target,
		Policy: serve.LifecyclePolicy{
			MinShadowRequests: *minShadow,
			MinCanaryRequests: *minCanary,
			MaxErrorDeltaM:    *maxErr,
			MaxP99DeltaMS:     *maxP99,
		},
	}
	err = serve.WriteBundle(*models, *name, man,
		func(f *os.File) error { return model.Save(f) },
		serve.ExtraFile{Name: "lifecycle.json", Write: func(f *os.File) error {
			raw, err := json.MarshalIndent(&spec, "", "  ")
			if err != nil {
				return err
			}
			_, err = f.Write(append(raw, '\n'))
			return err
		}})
	if err != nil {
		log.Fatalf("republishing bundle: %v", err)
	}
	log.Printf("republished %s (target %s, policy: shadow %d, canary %d, max error delta %gm, max p99 delta %gms)",
		*name, *target, *minShadow, *minCanary, *maxErr, *maxP99)
}
