#!/usr/bin/env bash
# Performance regression gate: run the noble-perf ci preset against the
# perf-scale demo models (large enough that the forward pass dominates a
# request, so the fp64-vs-int8 scenarios measure the model tiers) and
# compare the fresh BENCH.json to the committed
# BENCH_baseline.json. Fails on >15% throughput regression or >25% p99
# inflation in any scenario (thresholds live in noble-perf -gate; see
# docs/BENCH.md).
#
# Usage: ci/perf-gate.sh [workdir]
#
# Environment:
#   OUT=BENCH.json            where the fresh report is written
#   BASELINE=BENCH_baseline.json   the committed baseline to gate against
#   REBASELINE=1              record the fresh run as the new baseline
#                             (no gate) — run this after an intentional
#                             perf change, on the reference machine
set -euo pipefail

out="${OUT:-BENCH.json}"
baseline="${BASELINE:-BENCH_baseline.json}"
work="${1:-$(mktemp -d)}"
made_work=""
[ -n "${1:-}" ] || made_work="$work"
bin="$work/bin"
models="$work/models"
mkdir -p "$bin" "$models"

cleanup() {
    [ -n "$made_work" ] && rm -rf "$made_work" || true
}
trap cleanup EXIT

echo "== building noble-perf"
go build -o "$bin/" ./cmd/noble-perf

echo "== running the ci scenario suite (perf-scale demo models, trained on first use)"
"$bin/noble-perf" -preset=ci -models "$models" -o "$out"

if [ -n "${REBASELINE:-}" ]; then
    cp "$out" "$baseline"
    echo "re-baselined: $out -> $baseline (commit it)"
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "FAIL: no baseline at $baseline — record one with: REBASELINE=1 ci/perf-gate.sh"
    exit 1
fi

echo "== gating $out against $baseline"
"$bin/noble-perf" -gate -in "$out" -baseline "$baseline"
