#!/usr/bin/env bash
# Retrain gate: end-to-end proof of the drift-driven retraining loop
# (DESIGN.md §11) with real processes and real traffic. One noble-serve
# run with a durable journal:
#
#   A. tracking load with periodic WiFi fixes fills the session WAL with
#      re-anchor evidence (the loop's free supervision);
#   B. noble-retrain one-shot harvests the WAL into a corpus (an empty
#      corpus is a hard failure), retrains demo-wifi on seed + corpus,
#      and republishes with a loose auto-promote sidecar: the new
#      generation must enter SHADOW and ride the PR-9 pipeline to
#      active with no human in the loop;
#   C. the in-server path: `noble-serve -admin-addr ... -retrain
#      demo-wifi` kicks POST /admin/retrain/{model}, /debug/retrain
#      must report the run ok, the noble_retrain_* metrics must account
#      for it, and the second republish must promote the same way.
#
# Stage transitions are asserted through /debug/lifecycle (via
# ci/lifecyclewait) and the noble_lifecycle_*/noble_retrain_* counters
# on /metrics.
#
# Usage: ci/retrain-gate.sh [workdir]
set -euo pipefail

work="${1:-$(mktemp -d)}"
made_work=""
[ -n "${1:-}" ] || made_work="$work"
bin="$work/bin"
models="$work/models"
state="$work/state"
mkdir -p "$bin" "$models"
rm -rf "$state"

serve_pid=""
load_pid=""
mirror_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null || true
    [ -n "$load_pid" ] && kill "$load_pid" 2>/dev/null || true
    [ -n "$mirror_pid" ] && kill "$mirror_pid" 2>/dev/null || true
    # A mktemp run cleans up fully. With a caller-chosen workdir
    # everything is KEPT — on a failure the bundles, journal, corpus,
    # and logs are the artifacts that reproduce the bug.
    [ -n "$made_work" ] && rm -rf "$made_work" || true
}
trap cleanup EXIT

fail() {
    echo "FAIL: $1"
    for log in "$work"/*.log; do
        [ -f "$log" ] || continue
        echo "---- tail of $log ----"
        tail -n 40 "$log" | sed 's/^/   /'
    done
    exit 1
}

# wait_listening blocks until the serve process logs its resolved
# serving and admin addresses (both bind port 0) and the health check
# answers; sets $addr and $admin.
wait_listening() {
    local log="$1"
    addr=""
    admin=""
    for _ in $(seq 1 240); do
        addr=$(sed -n 's/.*msg=listening addr=\([^ ]*\).*/\1/p' "$log" | head -n1)
        admin=$(sed -n 's/.*msg="debug plane listening" addr=\([^ ]*\).*/\1/p' "$log" | head -n1)
        if [ -n "$addr" ] && [ -n "$admin" ] && curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$serve_pid" 2>/dev/null || fail "noble-serve exited during startup"
        sleep 0.5
    done
    fail "server never became healthy"
}

# counter scrapes one exact metric line (name{labels}) off /metrics.
counter() {
    curl -fsS "http://$addr/metrics" | awk -v m="$1" '$1==m {print $2}'
}

echo "== building binaries into $bin"
go build -o "$bin/" ./cmd/noble-serve ./cmd/noble-loadgen ./cmd/noble-retrain ./ci/lifecyclewait

# Fast-converging pipeline settings (as in ci/lifecycle-gate.sh):
# mirror every request, evaluate twice a second, poll the bundle dir
# four times a second. The retrain manager is manual-only (no trigger
# flags) — phase B drives it from outside, phase C over the admin plane.
serve_flags=(-models "$models" -state-dir "$state" -fsync interval -addr 127.0.0.1:0
    -admin-addr 127.0.0.1:0 -reload 250ms -mirror-rate 1 -lifecycle-tick 500ms
    -retrain-min-fixes 1)

echo "== boot: train tiny demo models and serve with journal + retrain manager"
"$bin/noble-serve" -demo-tiny "${serve_flags[@]}" >"$work/serve.log" 2>&1 &
serve_pid=$!
wait_listening "$work/serve.log"
echo "   serving on $addr, admin plane on $admin"

base=$("$bin/lifecyclewait" -url "http://$addr" -model demo-wifi -stage none -timeout 10s) \
    || fail "no clean demo-wifi deployment after boot"
base_active=${base#active=}; base_active=${base_active%% *}
echo "   baseline active bundle: $base_active"

echo "== phase A: tracking load with WiFi fixes fills the WAL with re-anchor evidence"
"$bin/noble-loadgen" -url "http://$addr" -mode track -model demo-imu \
    -wifi-model demo-wifi -fix-every 4 -concurrency 8 -qps 200 -duration 600s \
    -seed 7 >"$work/trackgen.log" 2>&1 &
load_pid=$!
# Steady localize load on demo-wifi: the mirror source that fills every
# staged generation's evidence window.
"$bin/noble-loadgen" -url "http://$addr" -mode localize -model demo-wifi \
    -concurrency 8 -qps 200 -duration 600s -seed 11 >"$work/mirrorgen.log" 2>&1 &
mirror_pid=$!

echo "== phase B: one-shot noble-retrain must harvest, retrain, and auto-promote"
# Retry while the first fixes land in the journal: an empty corpus is a
# hard failure in noble-retrain, so the first succeeding run proves the
# harvest found real evidence.
retrained=""
for _ in $(seq 1 60); do
    if "$bin/noble-retrain" -state-dir "$state" -models "$models" -model demo-wifi \
        -target active -policy-min-shadow 40 -policy-min-canary 40 \
        -policy-max-error-delta 500 -policy-max-p99-delta 10000 \
        >"$work/retrain.log" 2>&1; then
        retrained=1
        break
    fi
    grep -q "corpus .* is empty after harvest" "$work/retrain.log" \
        || fail "noble-retrain failed for a reason other than an empty corpus"
    sleep 0.5
done
[ -n "$retrained" ] || fail "corpus stayed empty: no re-anchor fixes reached the WAL"
sed 's/^/   /' "$work/retrain.log"
grep -q "harvested samples" "$work/retrain.log" || fail "retrain summary missing from noble-retrain output"

promoted=$("$bin/lifecyclewait" -url "http://$addr" -model demo-wifi \
    -stage none -active-bundle "!$base_active" -timeout 120s) \
    || fail "retrained bundle was not promoted to active"
second_active=${promoted#active=}; second_active=${second_active%% *}
echo "   retrain promoted; active bundle now $second_active"
shadows=$(counter 'noble_lifecycle_transitions_total{model="demo-wifi",to="shadow"}')
[ "${shadows:-0}" -ge 1 ] || fail "retrained bundle never entered shadow (it must not activate directly)"

echo "== phase C: admin-plane kick must retrain in-process"
"$bin/noble-serve" -admin-addr "$admin" -retrain demo-wifi 2>&1 | sed 's/^/   /'
ok=""
for _ in $(seq 1 240); do
    if curl -fsS "http://$admin/debug/retrain" 2>/dev/null | grep -q '"status":"ok"'; then
        ok=1
        break
    fi
    sleep 0.5
done
[ -n "$ok" ] || fail "/debug/retrain never reported a successful run after the admin kick"
echo "   /debug/retrain reports the kicked run ok"

runs=$(counter 'noble_retrain_runs_total{status="ok"}')
fixes=$(counter 'noble_retrain_corpus_fixes{model="demo-wifi"}')
harvested=$(counter 'noble_retrain_harvested_fixes_total')
echo "   retrain metrics: ok runs ${runs:-0}, corpus fixes ${fixes:-0}, harvested total ${harvested:-0}"
[ "${runs:-0}" -ge 1 ] || fail "noble_retrain_runs_total{status=ok} did not count the kicked run"
[ "${fixes:-0}" -ge 1 ] || fail "noble_retrain_corpus_fixes{model=demo-wifi} is empty"
[ "${harvested:-0}" -ge 1 ] || fail "noble_retrain_harvested_fixes_total is zero"

third=$("$bin/lifecyclewait" -url "http://$addr" -model demo-wifi \
    -stage none -active-bundle "!$second_active" -timeout 120s) \
    || fail "admin-kicked retrain did not ride shadow -> canary -> active"
third_active=${third#active=}; third_active=${third_active%% *}
shadows=$(counter 'noble_lifecycle_transitions_total{model="demo-wifi",to="shadow"}')
[ "${shadows:-0}" -ge 2 ] || fail "admin-kicked retrain never entered shadow"
echo "   admin-kicked retrain promoted; active bundle now $third_active"

kill "$load_pid" 2>/dev/null || true; load_pid=""
kill "$mirror_pid" 2>/dev/null || true; mirror_pid=""
kill -9 "$serve_pid"; serve_pid=""

echo "PASS: WAL evidence harvested, CLI retrain promoted through shadow, admin kick retrained in-process"
