package noble

import (
	"bytes"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end, the way the
// examples and a downstream user would.

func TestPublicWiFiPipeline(t *testing.T) {
	cfg := SmallIPINConfig()
	cfg.NumWAPs = 20
	cfg.RefSpacing = 5
	ds := SynthIPIN(cfg)
	trainCfg := DefaultWiFiConfig()
	trainCfg.Hidden = []int{32, 32}
	trainCfg.Epochs = 15
	model := TrainWiFi(ds, trainCfg)

	pred := model.Predict(ds.Test[0].Features)
	if !ds.Plan.Accessible(pred.Pos) {
		t.Fatalf("prediction %v off-map", pred.Pos)
	}

	preds := model.PredictMatrix(FeaturesMatrix(ds.Test))
	pos := make([]Point, len(preds))
	for i, p := range preds {
		pos[i] = p.Pos
	}
	stats := Stats(Errors(pos, Positions(ds.Test)))
	if stats.Mean > 8 {
		t.Fatalf("mean error %v through the public API", stats.Mean)
	}
	if OnMapRate(ds.Plan, pos) < 0.99 {
		t.Fatal("NObLe predictions must lie on the map")
	}
}

func TestPublicBaselines(t *testing.T) {
	cfg := SmallIPINConfig()
	cfg.NumWAPs = 20
	cfg.RefSpacing = 5
	ds := SynthIPIN(cfg)
	regCfg := DefaultRegConfig()
	regCfg.Hidden = []int{32, 32}
	regCfg.Epochs = 10
	reg := TrainWiFiRegression(ds, regCfg)
	x := FeaturesMatrix(ds.Test)
	raw := reg.PredictBatch(x)
	proj := ProjectPredictions(ds.Plan, raw)
	if OnMapRate(ds.Plan, proj) != 1 {
		t.Fatal("projection must put everything on-map")
	}
	knn := NewKNNFingerprint(ds, 3)
	knnStats := Stats(Errors(knn.PredictBatch(x), Positions(ds.Test)))
	if knnStats.Mean > 10 {
		t.Fatalf("kNN mean error %v", knnStats.Mean)
	}
}

func TestPublicIMUPipeline(t *testing.T) {
	net := NewCampusNetwork(6)
	dataCfg := DefaultIMUDataConfig()
	dataCfg.ReadingsPerSegment = 64
	dataCfg.TotalSegments = 100
	track := SynthesizeIMU(net, dataCfg, 3)
	if track.Duration() <= 0 {
		t.Fatal("track duration")
	}
	ds := BuildIMUPaths(track, IMUPathConfig{
		NumPaths: 400, MaxLen: 8, Frames: 4,
		TrainFrac: 0.7, ValFrac: 0.1, Seed: 4,
	})
	cfg := DefaultIMUConfig()
	cfg.Hidden = []int{48, 48}
	cfg.Tau = 1.0
	cfg.Epochs = 25
	model := TrainIMU(ds, cfg)
	preds := model.PredictPaths(ds.Test)
	truth := make([]Point, len(ds.Test))
	ends := make([]Point, len(preds))
	for i := range ds.Test {
		truth[i] = ds.Test[i].End
		ends[i] = preds[i].End
	}
	stats := Stats(Errors(ends, truth))
	if stats.Mean > 15 {
		t.Fatalf("IMU mean error %v through the public API", stats.Mean)
	}
}

func TestPublicEnergyModel(t *testing.T) {
	profile := JetsonTX2()
	budget := profile.TrackPath(4_000_000, 8)
	if budget.Ratio < 10 || budget.Ratio > 60 {
		t.Fatalf("GPS ratio %v implausible", budget.Ratio)
	}
	if GPSEnergyPerFix != 5.925 {
		t.Fatal("paper constant changed")
	}
}

func TestPublicCustomPlan(t *testing.T) {
	b := &Building{
		ID:        0,
		Name:      "lab",
		Footprint: NewRect(Point{X: 0, Y: 0}, Point{X: 20, Y: 10}).Polygon(),
		Floors:    1,
	}
	plan := &Plan{Name: "lab", Buildings: []*Building{b}}
	cfg := WiFiDatasetConfig{
		NumWAPs: 10, RefSpacing: 4, SamplesPerRef: 3,
		TestSamplesPerRef: 1, Seed: 5, Radio: DefaultRadioConfig(),
	}
	ds := GenerateWiFi(plan, cfg)
	if len(ds.Train) == 0 || len(ds.Test) == 0 {
		t.Fatal("custom plan produced empty dataset")
	}
	for _, s := range ds.Train {
		if !plan.Accessible(s.Pos) {
			t.Fatal("sample off custom plan")
		}
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	cfg := SmallIPINConfig()
	cfg.NumWAPs = 8
	cfg.RefSpacing = 8
	ds := SynthIPIN(cfg)
	var buf bytes.Buffer
	if err := SaveUJICSV(&buf, ds.Train[:5]); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadUJICSV(&buf, cfg.Radio.DetectionThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 5 {
		t.Fatalf("loaded %d", len(loaded))
	}
}

func TestPublicQuantizer(t *testing.T) {
	pts := []Point{{X: 0.1, Y: 0.1}, {X: 5, Y: 5}}
	g := NewGrid(1, pts)
	if g.Classes() != 2 {
		t.Fatalf("classes=%d", g.Classes())
	}
	if id, ok := g.ClassOf(pts[0]); !ok || g.Decode(id) != pts[0] {
		t.Fatal("quantizer round trip")
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := Experiments()
	if len(all) < 12 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Name == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"T1", "T2", "T2b", "T3", "F1", "F4", "F5", "E1", "E2"} {
		if !seen[id] {
			t.Fatalf("paper artifact %s missing from the registry", id)
		}
	}
}

func TestRunSingleExperimentReport(t *testing.T) {
	// RunIPIN is the fastest trained experiment; verify its report
	// carries paper-vs-measured rows and renders.
	rep := RunIPIN(Small)
	if rep.ID != "T2b" || len(rep.Rows) < 2 {
		t.Fatalf("unexpected report %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NObLe", "Deep Regression", "paper mean", "1.13"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestScatterHelpers(t *testing.T) {
	pts := []Point{{X: 1, Y: 1}}
	art := ScatterASCII(pts, NewRect(Point{X: 0, Y: 0}, Point{X: 2, Y: 2}), 10, 5)
	if !strings.Contains(art, "#") {
		t.Fatal("scatter missing point")
	}
	var buf bytes.Buffer
	if err := ScatterCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,y\n") {
		t.Fatal("CSV header")
	}
}

func TestSeededRandDeterministic(t *testing.T) {
	if SeededRand(7).Float64() != SeededRand(7).Float64() {
		t.Fatal("SeededRand must be deterministic")
	}
}

func TestDistHelper(t *testing.T) {
	if Dist(Point{X: 0, Y: 0}, Point{X: 3, Y: 4}) != 5 {
		t.Fatal("Dist")
	}
}

func TestPublicExtensionAPIs(t *testing.T) {
	cfg := SmallIPINConfig()
	cfg.NumWAPs = 20
	cfg.RefSpacing = 5
	ds := SynthIPIN(cfg)
	trainCfg := DefaultWiFiConfig()
	trainCfg.Hidden = []int{32, 32}
	trainCfg.Epochs = 10
	model := TrainWiFi(ds, trainCfg)

	// Top-k decoding through the alias type.
	top := model.PredictTopK(ds.Test[0].Features, 3)
	if len(top) != 3 || top[0].Prob < top[2].Prob {
		t.Fatalf("top-k through facade: %+v", top)
	}

	// Hierarchical decoding.
	hier := model.PredictBatchHierarchical(FeaturesMatrix(ds.Test[:4]))
	if len(hier) != 4 {
		t.Fatalf("hierarchical preds %d", len(hier))
	}

	// Confusion and per-group breakdown.
	preds := model.PredictMatrix(FeaturesMatrix(ds.Test))
	floors := make([]int, len(preds))
	pos := make([]Point, len(preds))
	for i, p := range preds {
		floors[i] = p.Floor
		pos[i] = p.Pos
	}
	cm := Confusion(floors, FloorLabels(ds.Test), ds.NumFloors)
	if len(cm) != ds.NumFloors {
		t.Fatalf("confusion size %d", len(cm))
	}
	if FormatConfusion(cm) == "" {
		t.Fatal("empty confusion rendering")
	}
	stats := GroupStats(Errors(pos, Positions(ds.Test)), FloorLabels(ds.Test))
	if len(stats) == 0 {
		t.Fatal("no group stats")
	}
	if FormatGroupStats("floor", stats) == "" {
		t.Fatal("empty group stats rendering")
	}
}

func TestPublicViterbiTracking(t *testing.T) {
	net := NewCampusNetwork(6)
	dataCfg := DefaultIMUDataConfig()
	dataCfg.ReadingsPerSegment = 64
	dataCfg.TotalSegments = 100
	track := SynthesizeIMU(net, dataCfg, 3)
	ds := BuildIMUPaths(track, IMUPathConfig{
		NumPaths: 400, MaxLen: 8, Frames: 4,
		TrainFrac: 0.7, ValFrac: 0.1, Seed: 4,
	})
	cfg := DefaultIMUConfig()
	cfg.Hidden = []int{48, 48}
	cfg.Tau = 1.0
	cfg.Epochs = 20
	model := TrainIMU(ds, cfg)
	walk := track.Walks[0]
	preds := model.TrackWalkViterbi(net, walk)
	if len(preds) != len(walk.Segments) {
		t.Fatalf("viterbi preds %d for %d segments", len(preds), len(walk.Segments))
	}
}
