package noble

import (
	"io"
	"math/rand"

	"noble/internal/dataset"
	"noble/internal/floorplan"
	"noble/internal/geo"
	"noble/internal/imu"
	"noble/internal/radio"
)

// Point is a planar position in meters (the paper's longitude/latitude are
// projected planar coordinates).
type Point = geo.Point

// Rect is an axis-aligned rectangle.
type Rect = geo.Rect

// Polygon is a simple polygon.
type Polygon = geo.Polygon

// NewRect builds a rectangle from two opposite corners.
func NewRect(a, b Point) Rect { return geo.NewRect(a, b) }

// Dist returns the Euclidean distance between two points — the paper's
// position-error metric.
func Dist(a, b Point) float64 { return geo.Dist(a, b) }

// Plan is a localization space: buildings with courtyards plus outdoor
// regions. Custom plans can be assembled from Buildings and passed to
// GenerateWiFi.
type Plan = floorplan.Plan

// Building is one structure on a plan.
type Building = floorplan.Building

// RefPoint is one survey location on a plan.
type RefPoint = floorplan.RefPoint

// UJICampus returns the synthetic three-building campus standing in for
// UJIIndoorLoc (Fig. 1).
func UJICampus() *Plan { return floorplan.UJICampus() }

// IPINBuilding returns the synthetic single building standing in for
// IPIN2016.
func IPINBuilding() *Plan { return floorplan.IPINBuilding() }

// OutdoorCampus returns the 160 m × 60 m outdoor tracking space of §V.
func OutdoorCampus() *Plan { return floorplan.OutdoorCampus() }

// RadioConfig holds the Wi-Fi propagation model parameters.
type RadioConfig = radio.Config

// RadioSimulator produces RSSI fingerprints for positions on a plan.
type RadioSimulator = radio.Simulator

// DefaultRadioConfig returns indoor-office propagation parameters.
func DefaultRadioConfig() RadioConfig { return radio.DefaultConfig() }

// NewRadioSimulator places count access points on the plan and returns a
// fingerprint simulator.
func NewRadioSimulator(plan *Plan, cfg RadioConfig, count int, seed int64) *RadioSimulator {
	return radio.NewSimulator(plan, cfg, count, seed)
}

// RSSINotDetected is the sentinel RSSI for an unheard access point (+100,
// the UJIIndoorLoc convention).
const RSSINotDetected = radio.NotDetected

// NormalizeRSSI maps raw RSSI values to [0,1] network features.
func NormalizeRSSI(rssi []float64, detectionThreshold float64) []float64 {
	return radio.Normalize(rssi, detectionThreshold)
}

// WiFiDatasetConfig controls synthetic Wi-Fi survey generation.
type WiFiDatasetConfig = dataset.WiFiConfig

// DefaultUJIConfig is the full-size synthetic UJIIndoorLoc stand-in.
func DefaultUJIConfig() WiFiDatasetConfig { return dataset.DefaultUJIConfig() }

// SmallUJIConfig is the scaled-down UJI preset for quick runs.
func SmallUJIConfig() WiFiDatasetConfig { return dataset.SmallUJIConfig() }

// DefaultIPINConfig is the single-building IPIN2016 stand-in.
func DefaultIPINConfig() WiFiDatasetConfig { return dataset.DefaultIPINConfig() }

// SmallIPINConfig is the scaled-down IPIN preset.
func SmallIPINConfig() WiFiDatasetConfig { return dataset.SmallIPINConfig() }

// SynthUJI generates the synthetic UJIIndoorLoc-like dataset.
func SynthUJI(cfg WiFiDatasetConfig) *WiFiDataset { return dataset.SynthUJI(cfg) }

// SynthIPIN generates the synthetic IPIN2016-like dataset.
func SynthIPIN(cfg WiFiDatasetConfig) *WiFiDataset { return dataset.SynthIPIN(cfg) }

// GenerateWiFi runs the survey protocol on an arbitrary plan.
func GenerateWiFi(plan *Plan, cfg WiFiDatasetConfig) *WiFiDataset {
	return dataset.Generate(plan, cfg)
}

// SaveUJICSV writes samples in the UJIIndoorLoc CSV layout.
func SaveUJICSV(w io.Writer, samples []WiFiSample) error {
	return dataset.SaveUJICSV(w, samples)
}

// LoadUJICSV reads samples from a UJIIndoorLoc-layout CSV (the published
// dataset's files work unchanged).
func LoadUJICSV(r io.Reader, detectionThreshold float64) ([]WiFiSample, error) {
	return dataset.LoadUJICSV(r, detectionThreshold)
}

// IMUNetwork is the walkable reference-location graph for tracking.
type IMUNetwork = imu.Network

// IMUTrack is a recorded collection of walks.
type IMUTrack = imu.Track

// IMUConfigData holds the IMU collection-protocol and sensor parameters.
type IMUConfigData = imu.Config

// IMUPath is one tracking example (start, segment features, end).
type IMUPath = imu.Path

// IMUPathDataset is the materialized path dataset with splits.
type IMUPathDataset = imu.PathDataset

// IMUPathConfig controls path construction (§V-A protocol).
type IMUPathConfig = imu.PathConfig

// NewCampusNetwork lays reference locations along the outdoor campus
// sidewalks; spacing 3 m yields ≈177 references like the paper.
func NewCampusNetwork(spacing float64) *IMUNetwork { return imu.NewCampusNetwork(spacing) }

// DefaultIMUDataConfig mirrors the paper's collection protocol (50 Hz,
// 768 readings per segment, two walks, ≈75 minutes).
func DefaultIMUDataConfig() IMUConfigData { return imu.DefaultConfig() }

// SynthesizeIMU records random walks over the network with the gait and
// sensor-noise model.
func SynthesizeIMU(net *IMUNetwork, cfg IMUConfigData, seed int64) *IMUTrack {
	return imu.Synthesize(net, cfg, seed)
}

// DefaultIMUPathConfig mirrors the paper's 6857-path, 4389/1096/1372
// protocol.
func DefaultIMUPathConfig() IMUPathConfig { return imu.DefaultPathConfig() }

// BuildIMUPaths constructs the path dataset from a track per §V-A.
func BuildIMUPaths(track *IMUTrack, cfg IMUPathConfig) *IMUPathDataset {
	return imu.BuildPaths(track, cfg)
}

// Convenience re-exports for assembling feature matrices.

// FeaturesMatrix stacks sample features into a matrix accepted by
// WiFiModel.PredictMatrix.
func FeaturesMatrix(samples []WiFiSample) *Matrix { return dataset.FeaturesMatrix(samples) }

// Positions extracts ground-truth coordinates.
func Positions(samples []WiFiSample) []Point { return dataset.Positions(samples) }

// BuildingLabels extracts building IDs.
func BuildingLabels(samples []WiFiSample) []int { return dataset.BuildingLabels(samples) }

// FloorLabels extracts floor indices.
func FloorLabels(samples []WiFiSample) []int { return dataset.FloorLabels(samples) }

// SeededRand returns a deterministic random generator (every stochastic
// API in this module takes explicit seeds or generators).
func SeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
