package client_test

// Fault-injection coverage for the SDK's retry/backoff machinery: which
// failures are retried, which calls must never be, and how context
// deadlines cut the backoff loop short. Complements the happy-path
// retry tests in client_test.go.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noble/client"
)

// flakyListener wraps a TCP listener and severs the first n accepted
// connections before a byte is exchanged, injecting connection errors
// that the transport cannot mistake for HTTP failures.
type flakyListener struct {
	net.Listener
	drops atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil || l.drops.Add(-1) < 0 {
			return conn, err
		}
		conn.Close() // the client's exchange dies with a reset/EOF
	}
}

// newFlakyServer serves handler behind a listener that kills the first
// drops connections.
func newFlakyServer(t *testing.T, drops int, handler http.Handler) *httptest.Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln}
	fl.drops.Store(int32(drops))
	ts := &httptest.Server{Listener: fl, Config: &http.Server{Handler: handler}}
	ts.Start()
	t.Cleanup(ts.Close)
	return ts
}

func TestRetryRecoversFromConnectionError(t *testing.T) {
	// First connection dies mid-dial; the retry must dial again and get
	// the real answer. Connections are counted server-side so the test
	// proves the request was actually re-sent, not just re-dialed.
	var served atomic.Int32
	ts := newFlakyServer(t, 1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"results":[{"x":9,"y":8,"class":1,"building":0,"floor":0}]}`))
	}))
	c := client.New(ts.URL, client.WithRetries(2, time.Millisecond))
	got, err := c.Localize(context.Background(), "m", []float64{0.5})
	if err != nil || len(got) != 1 || got[0].X != 9 {
		t.Fatalf("got %+v err %v after a connection-error retry", got, err)
	}
	if served.Load() != 1 {
		t.Fatalf("server answered %d requests, want exactly 1 (the retried one)", served.Load())
	}
}

func TestDeadlineCutsBackoffLoop(t *testing.T) {
	// A server that always 5xxes, a client with a huge backoff, and a
	// context that expires first: the call must return as soon as the
	// deadline fires — during the first backoff sleep — not after
	// serving out every retry.
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":{"code":"inference_failed","message":"boom"}}`))
	}))
	defer ts.Close()
	c := client.New(ts.URL, client.WithRetries(5, 10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Localize(ctx, "m", []float64{0.5})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want an error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want context.DeadlineExceeded from the backoff sleep", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("call took %v; the deadline must cut the 10s backoff", elapsed)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server hit %d times; the deadline fired during the first backoff, so only 1 attempt can have run", n)
	}
}

func TestCanceledContextStopsRetriesAfterAttempt(t *testing.T) {
	// The handler cancels the caller's context while serving the first
	// (5xx) attempt: the loop must surface the 5xx as the last error
	// without burning the remaining retries.
	ctx, cancel := context.WithCancel(context.Background())
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		cancel()
		w.WriteHeader(http.StatusBadGateway)
		w.Write([]byte(`{"error":{"code":"inference_failed","message":"zap"}}`))
	}))
	defer ts.Close()
	c := client.New(ts.URL, client.WithRetries(5, time.Millisecond))
	_, err := c.Localize(ctx, "m", []float64{0.5})
	var ae *client.APIError
	if err == nil || (!errors.As(err, &ae) && !errors.Is(err, context.Canceled)) {
		t.Fatalf("err %v, want the attempt's error surfaced", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hit %d times after cancel, want 1", hits.Load())
	}
}

func TestAppendNeverRetriesOnConnectionError(t *testing.T) {
	// client_test.go proves appends are not retried on 5xx; connection
	// errors are the more tempting case (the request "probably" never
	// arrived — but only provably-unsent is safe, and the SDK cannot
	// prove it), so pin that appends do not retry those either.
	var attempts atomic.Int32
	ts := newFlakyServer(t, 99, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
	}))
	// Count dials instead of requests: every dropped connection is one
	// attempt that must not be repeated.
	dialed := atomic.Int32{}
	tr := &http.Transport{DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
		dialed.Add(1)
		var d net.Dialer
		return d.DialContext(ctx, network, addr)
	}}
	c := client.New(ts.URL, client.WithRetries(5, time.Millisecond), client.WithHTTPClient(&http.Client{Transport: tr}))
	_, err := c.Session("d").Append(context.Background(), client.AppendRequest{Model: "m"})
	if err == nil {
		t.Fatal("want a connection error")
	}
	if attempts.Load() != 0 {
		t.Fatalf("append reached the handler %d times through a severed listener", attempts.Load())
	}
	if d := dialed.Load(); d != 1 {
		t.Fatalf("append dialed %d times, want 1 (never retried)", d)
	}
}

func TestRequestHookObservesRetriesAndOutcomes(t *testing.T) {
	// The hook sees one observation per attempt: two 5xx then a success.
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":{"code":"inference_failed","message":"transient"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"results":[{"x":1,"y":2,"class":3,"building":0,"floor":0}]}`))
	}))
	defer ts.Close()
	var obsMu sync.Mutex
	var seen []client.RequestObservation
	hook := func(o client.RequestObservation) {
		obsMu.Lock()
		defer obsMu.Unlock()
		seen = append(seen, o)
	}
	c := client.New(ts.URL, client.WithRetries(3, time.Millisecond), client.WithRequestHook(hook))
	if _, err := c.Localize(context.Background(), "m", []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("hook saw %d observations, want 3 (2 failures + success)", len(seen))
	}
	for i, o := range seen {
		if o.Endpoint != "/localize" || o.Method != http.MethodPost {
			t.Fatalf("observation %d misdescribed: %+v", i, o)
		}
		wantStatus := http.StatusInternalServerError
		if i == 2 {
			wantStatus = http.StatusOK
		}
		if o.Status != wantStatus || o.Err != nil {
			t.Fatalf("observation %d: %+v, want status %d", i, o, wantStatus)
		}
		if o.Duration <= 0 {
			t.Fatalf("observation %d has no duration: %+v", i, o)
		}
	}

	// A transport error observes with Err set and Status 0.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := dead.URL
	dead.Close()
	seen = nil
	c2 := client.New(url, client.WithRetries(0, 0), client.WithRequestHook(hook))
	if _, err := c2.Localize(context.Background(), "m", []float64{0.5}); err == nil {
		t.Fatal("want a connection error")
	}
	if len(seen) != 1 || seen[0].Err == nil || seen[0].Status != 0 {
		t.Fatalf("transport-error observation wrong: %+v", seen)
	}
}

func TestRetryOn503DrainThenEOF(t *testing.T) {
	// A draining server answers 503 then goes away entirely: the retry
	// sequence must end with an error (either the 503 APIError or the
	// connection error), never a false success, and must stop within the
	// configured attempts.
	var hits atomic.Int32
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			if hits.Add(1) == 1 {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(`{"error":{"code":"server_draining","message":"draining"}}`))
				return
			}
			// Sever without an HTTP response.
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
		})}}
	ts.Start()
	defer ts.Close()
	c := client.New(ts.URL, client.WithRetries(2, time.Millisecond))
	_, err = c.Localize(context.Background(), "m", []float64{0.5})
	if err == nil {
		t.Fatal("want an error from a dying server")
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("%d attempts, want 3 (initial + 2 retries)", n)
	}
}
