package client

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// WithFastTransport switches the client's simple JSON calls onto a
// minimal pooled HTTP/1.1 transport: one persistent TCP connection per
// in-flight request, request bytes assembled into a single write,
// response headers scanned just enough to find the status and body.
//
// The stock net/http transport costs tens of microseconds of CPU per
// request in connection-pool and header bookkeeping. A phone asking for
// its position once a minute never notices; a gateway fanning a
// building's worth of devices into one server — or a load generator
// sharing cores with the server it measures — does. The fast transport
// cuts that overhead to roughly a syscall pair per request.
//
// Scope: plain http:// URLs and buffered request/response bodies
// (Content-Length or chunked framing). Streaming (TrackStream) and
// https always use net/http. Context deadlines map to socket deadlines.
// A pooled connection that turns out to be dead is replayed once on a
// fresh dial iff no response byte was seen (the request was provably
// never processed), matching net/http's reuse semantics.
func WithFastTransport() Option {
	return func(c *Client) { c.wantFast = true }
}

// fastTransport is the pooled raw-HTTP/1.1 engine behind
// WithFastTransport.
type fastTransport struct {
	addr string // host:port
	pool chan *fastConn
}

// fastConn is one persistent connection.
type fastConn struct {
	c      net.Conn
	br     *bufio.Reader
	wbuf   []byte
	reused bool      // popped from the pool (vs freshly dialed)
	idle   time.Time // when it was returned to the pool
}

// maxConnIdle discards pooled connections idle longer than this: the
// peer (or an LB) may have silently closed them, and a dead socket
// surfaces as a spurious request failure.
const maxConnIdle = 60 * time.Second

// newFastTransport builds the engine for a base URL, or nil if the URL
// is not plain http.
func newFastTransport(base string) *fastTransport {
	u, err := url.Parse(base)
	if err != nil || u.Scheme != "http" || u.Host == "" {
		return nil
	}
	addr := u.Host
	if u.Port() == "" {
		addr += ":80"
	}
	return &fastTransport{addr: addr, pool: make(chan *fastConn, 256)}
}

// get pops a pooled connection (skipping ones idle past maxConnIdle)
// or dials a fresh one.
func (t *fastTransport) get(ctx context.Context) (*fastConn, error) {
	for {
		select {
		case fc := <-t.pool:
			if time.Since(fc.idle) > maxConnIdle {
				fc.c.Close()
				continue
			}
			fc.reused = true
			return fc, nil
		default:
		}
		break
	}
	return t.dial(ctx)
}

// dial opens a fresh connection.
func (t *fastTransport) dial(ctx context.Context) (*fastConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", t.addr)
	if err != nil {
		return nil, err
	}
	return &fastConn{c: conn, br: bufio.NewReaderSize(conn, 16<<10)}, nil
}

// put returns a healthy connection to the pool (or closes it when the
// pool is full).
func (t *fastTransport) put(fc *fastConn) {
	fc.idle = time.Now()
	select {
	case t.pool <- fc:
	default:
		fc.c.Close()
	}
}

// roundTrip performs one exchange. hdr carries the few extra headers
// the SDK sets (Content-Type, X-Deadline-Ms). A reused connection that
// dies before yielding any response byte was almost certainly closed by
// the peer while pooled (server restart, LB idle kill) — the request
// was never processed, so it is replayed once on a fresh dial; this is
// the same guarantee net/http gives, and it is what makes the transport
// safe for never-retried session appends.
func (t *fastTransport) roundTrip(ctx context.Context, method, path string, hdr [][2]string, body []byte) (int, []byte, error) {
	fc, err := t.get(ctx)
	if err != nil {
		return 0, nil, err
	}
	status, resp, keep, started, err := t.exchange(ctx, fc, method, path, hdr, body)
	if err != nil {
		fc.c.Close()
		if !fc.reused || started {
			return 0, nil, err
		}
		if fc, err = t.dial(ctx); err != nil {
			return 0, nil, err
		}
		if status, resp, keep, _, err = t.exchange(ctx, fc, method, path, hdr, body); err != nil {
			fc.c.Close()
			return 0, nil, err
		}
	}
	if keep {
		t.put(fc)
	} else {
		fc.c.Close()
	}
	return status, resp, nil
}

// exchange writes one request and reads one response on fc. started
// reports whether any response byte arrived before a failure.
func (t *fastTransport) exchange(ctx context.Context, fc *fastConn, method, path string, hdr [][2]string, body []byte) (status int, resp []byte, keepAlive, started bool, err error) {
	if dl, has := ctx.Deadline(); has {
		fc.c.SetDeadline(dl)
	} else {
		fc.c.SetDeadline(time.Time{})
	}

	// One write: request line, headers, body.
	b := fc.wbuf[:0]
	b = append(b, method...)
	b = append(b, ' ')
	b = append(b, path...)
	b = append(b, " HTTP/1.1\r\nHost: "...)
	b = append(b, t.addr...)
	b = append(b, '\r', '\n')
	for _, h := range hdr {
		b = append(b, h[0]...)
		b = append(b, ':', ' ')
		b = append(b, h[1]...)
		b = append(b, '\r', '\n')
	}
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, '\r', '\n', '\r', '\n')
	b = append(b, body...)
	fc.wbuf = b
	if _, err := fc.c.Write(b); err != nil {
		return 0, nil, false, false, err
	}

	// Status line.
	line, err := fc.br.ReadSlice('\n')
	if len(line) > 0 {
		started = true
	}
	if err != nil {
		return 0, nil, false, started, err
	}
	if len(line) < 12 || !strings.HasPrefix(string(line[:5]), "HTTP/") {
		return 0, nil, false, true, fmt.Errorf("client: malformed status line %q", line)
	}
	status, err = strconv.Atoi(string(line[9:12]))
	if err != nil {
		return 0, nil, false, true, fmt.Errorf("client: bad status line %q", line)
	}

	// Headers: only the framing headers matter here.
	contentLength := -1
	chunked := false
	keepAlive = true
	for {
		line, err = fc.br.ReadSlice('\n')
		if err != nil {
			return 0, nil, false, true, err
		}
		if len(line) <= 2 { // bare CRLF: end of headers
			break
		}
		if v, found := headerValue(line, "Content-Length"); found {
			if contentLength, err = strconv.Atoi(v); err != nil {
				return 0, nil, false, true, fmt.Errorf("client: bad Content-Length %q", v)
			}
		}
		if v, found := headerValue(line, "Transfer-Encoding"); found && strings.EqualFold(v, "chunked") {
			chunked = true
		}
		if v, found := headerValue(line, "Connection"); found && strings.EqualFold(v, "close") {
			keepAlive = false
		}
	}
	switch {
	case chunked:
		// Go's server chunk-encodes any body over its sniff buffer
		// (2 KiB), so large-but-ordinary responses land here.
		if resp, err = readChunked(fc.br); err != nil {
			return 0, nil, false, true, err
		}
	case contentLength >= 0:
		resp = make([]byte, contentLength)
		if _, err = readFull(fc.br, resp); err != nil {
			return 0, nil, false, true, err
		}
	default:
		// Close-delimited (HTTP/1.0 style): read to EOF; the conn is
		// not reusable.
		if resp, err = io.ReadAll(fc.br); err != nil {
			return 0, nil, false, true, err
		}
		keepAlive = false
	}
	return status, resp, keepAlive, true, nil
}

// readChunked decodes a chunked transfer coding body (discarding any
// trailers).
func readChunked(br *bufio.Reader) ([]byte, error) {
	var out []byte
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		sizeTok, _, _ := strings.Cut(strings.TrimSpace(line), ";")
		size, err := strconv.ParseInt(sizeTok, 16, 32)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("client: bad chunk size %q", line)
		}
		if size == 0 {
			break
		}
		chunk := make([]byte, size+2) // chunk data + trailing CRLF
		if _, err := readFull(br, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk[:size]...)
	}
	// Trailer section: lines until the terminating bare CRLF.
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		if len(strings.TrimSpace(line)) == 0 {
			return out, nil
		}
	}
}

// headerValue matches one "Name: value" line case-insensitively and
// returns the trimmed value.
func headerValue(line []byte, name string) (string, bool) {
	if len(line) < len(name)+1 || line[len(name)] != ':' {
		return "", false
	}
	if !strings.EqualFold(string(line[:len(name)]), name) {
		return "", false
	}
	return strings.TrimSpace(string(line[len(name)+1:])), true
}

// readFull fills buf from br.
func readFull(br *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := br.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
