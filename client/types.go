package client

// Wire types, mirroring the server's /v1+/v2 JSON shapes. They are
// defined here rather than imported so the SDK stays a standalone
// dependency surface: a device vendor builds against this package only.

// XY is a planar point.
type XY struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Position is one decoded localization result.
type Position struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Class    int     `json:"class"`
	Building int     `json:"building"`
	Floor    int     `json:"floor"`
}

// Path is one IMU path to decode: the anchor position plus the
// concatenated per-segment features (a multiple of the model's
// segment_dim).
type Path struct {
	Start    XY        `json:"start"`
	Features []float64 `json:"features"`
}

// TrackResult is one decoded path end.
type TrackResult struct {
	End          XY  `json:"end"`
	Class        int `json:"class"`
	Displacement XY  `json:"displacement"`
}

// ModelInfo summarizes one registered model.
type ModelInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`      // "wifi" or "imu"
	Precision  string `json:"precision"` // serving tier: "fp64" or "int8"
	Classes    int    `json:"classes"`
	FLOPs      int64  `json:"flops"`
	Generation int    `json:"generation"`
	LoadedAt   string `json:"loaded_at"`

	// Deployment lifecycle. Stage is "shadow", "canary", or "active"
	// (empty against a pre-lifecycle server); /v2/models lists staged
	// generations alongside the active ones, /v1/models actives only.
	Stage    string `json:"stage,omitempty"`
	BundleID string `json:"bundle_id,omitempty"`

	// Wi-Fi only.
	InputDim  int `json:"input_dim,omitempty"`
	Buildings int `json:"buildings,omitempty"`
	Floors    int `json:"floors,omitempty"`

	// IMU only.
	MaxSegments int `json:"max_segments,omitempty"`
	SegmentDim  int `json:"segment_dim,omitempty"`

	// Lifecycle carries a generation's promotion policy and live
	// evaluation evidence (/v2/models only).
	Lifecycle *LifecycleInfo `json:"lifecycle,omitempty"`
}

// LifecycleInfo is one model generation's deployment state: its stage,
// the stage its bundle is allowed to reach, the promotion policy, and
// the live evidence (mirrored traffic, re-anchor error scores, pass
// latency) the server's promotion controller weighs.
type LifecycleInfo struct {
	Stage           string          `json:"stage"`
	Target          string          `json:"target"`
	Since           string          `json:"since"`
	MirroredRows    int64           `json:"mirrored_rows"`
	ReAnchorScores  int64           `json:"reanchor_scores"`
	MeanErrorM      float64         `json:"mean_error_m"`
	MeanDivergenceM float64         `json:"mean_divergence_m"`
	P99PassMS       float64         `json:"p99_pass_ms"`
	DroppedMirrors  int64           `json:"dropped_mirrors"`
	Policy          LifecyclePolicy `json:"policy"`
}

// LifecyclePolicy is the promotion contract a bundle declared in its
// lifecycle.json sidecar.
type LifecyclePolicy struct {
	MinShadowRequests int64   `json:"min_shadow_requests"`
	MinCanaryRequests int64   `json:"min_canary_requests"`
	MaxErrorDeltaM    float64 `json:"max_error_delta_m"`
	MaxP99DeltaMS     float64 `json:"max_p99_delta_ms"`
}

// Health is the server liveness summary. RequestID and Draining are
// /v2-only (zero against a /v1 server).
type Health struct {
	RequestID     string `json:"request_id,omitempty"`
	Status        string `json:"status"`
	Models        int    `json:"models"`
	Batching      bool   `json:"batching"`
	Sessions      int    `json:"sessions"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	Draining      bool   `json:"draining,omitempty"`
}

// StepResult is one decoded tracking step inside a session.
type StepResult struct {
	Step         int `json:"step"` // 1-based lifetime step index
	End          XY  `json:"end"`
	Class        int `json:"class"`
	Displacement XY  `json:"displacement"`
}

// SessionState describes a tracking session after a request: identity,
// what the request did (Created, ReAnchored, per-step Results), and the
// current estimate.
type SessionState struct {
	RequestID  string       `json:"request_id,omitempty"`
	Session    string       `json:"session"`
	Model      string       `json:"model"`
	Created    bool         `json:"created,omitempty"`
	ReAnchored bool         `json:"re_anchored,omitempty"`
	Anchor     *XY          `json:"anchor,omitempty"`
	Steps      int          `json:"steps"`
	Position   XY           `json:"position"`
	Class      int          `json:"class"`
	Traveled   XY           `json:"traveled"`
	Results    []StepResult `json:"results,omitempty"`
}

// AppendRequest is one session-segments request: everything optional
// except that the session's first request must carry Model plus an
// origin (Start and/or a WiFi fingerprint).
type AppendRequest struct {
	Model  string `json:"model,omitempty"`
	Start  *XY    `json:"start,omitempty"`
	Window int    `json:"window,omitempty"`

	Features []float64 `json:"features,omitempty"`

	WiFiModel   string    `json:"wifi_model,omitempty"`
	Fingerprint []float64 `json:"fingerprint,omitempty"`
}
