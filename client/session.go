package client

import (
	"context"
	"encoding/json"
	"net/http"
)

// Session is a handle on one server-side tracking session. Obtain with
// Client.Session; the session itself is created lazily by the first
// Append that carries a model and an origin.
type Session struct {
	c  *Client
	id string
}

// Session returns a handle for the tracking session named id.
func (c *Client) Session(id string) *Session { return &Session{c: c, id: id} }

// ID returns the session name.
func (s *Session) ID() string { return s.id }

// Append sends one session-segments request: create on first use, then
// any mix of IMU segments and WiFi re-anchor fingerprints.
//
// Appends are NOT retried automatically: a segment append is not
// idempotent (re-sending a delivered append would walk the device
// twice). On a mid-request inference failure (*APIError with status
// 500) the returned SessionState still carries the committed prefix —
// Results holds the steps that DID apply — so resend exactly the
// unreported tail. Wrap Append in your own retry only for errors where
// the request provably never reached the server.
func (s *Session) Append(ctx context.Context, req AppendRequest) (SessionState, error) {
	var st SessionState
	status, raw, err := s.c.roundTrip(ctx, http.MethodPost, "/sessions/"+s.id+"/segments", marshal(req))
	if err != nil {
		return st, err
	}
	if status < 300 {
		return st, json.Unmarshal(raw, &st)
	}
	apiErr := parseAPIError(status, raw)
	// The server's partial-commit contract: a mid-request step failure
	// is a 5xx (500 failed pass, 504 deadline mid-append) whose body is
	// the session state (committed Results, Steps, Position) with the
	// error riding along. Decode it so the caller can follow the
	// resend-only-the-tail protocol. Both the /v1 (error string) and
	// /v2 (error object) shapes decode — unknown fields are ignored; a
	// non-session 5xx body leaves st zero.
	if status >= 500 {
		if json.Unmarshal(raw, &st) != nil || st.Session == "" {
			st = SessionState{}
		}
	}
	return st, apiErr
}

// Get reads the session's current state.
func (s *Session) Get(ctx context.Context) (SessionState, error) {
	var st SessionState
	err := s.c.do(ctx, http.MethodGet, "/sessions/"+s.id, nil, &st)
	return st, err
}

// Delete ends the session.
func (s *Session) Delete(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, "/sessions/"+s.id, nil, nil)
}
