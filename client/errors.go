package client

import (
	"encoding/json"
	"fmt"
)

// Error codes a /v2 server may return; mirror internal/serve. Against a
// /v1 server Code is empty (only Status and Message are populated).
const (
	CodeBadRequest       = "bad_request"
	CodeBadBody          = "bad_body"
	CodeBodyTooLarge     = "body_too_large"
	CodeModelNotFound    = "model_not_found"
	CodeWrongModelKind   = "wrong_model_kind"
	CodeBadFingerprint   = "bad_fingerprint"
	CodeBadPath          = "bad_path"
	CodeBadSegment       = "bad_segment"
	CodeSessionNotFound  = "session_not_found"
	CodeSessionConflict  = "session_conflict"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeCanceled         = "canceled"
	CodeInference        = "inference_failed"
	CodeDraining         = "server_draining"
)

// APIError is a non-2xx server answer: HTTP status, the /v2
// machine-readable code (empty from a /v1 server), the human-readable
// message, and the server-assigned request ID when present.
type APIError struct {
	Status    int
	Code      string
	Message   string
	RequestID string
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("%s (%s, http %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("%s (http %d)", e.Message, e.Status)
}

// IsCode reports whether err is an *APIError with the given code.
func IsCode(err error, code string) bool {
	e, ok := err.(*APIError)
	return ok && e.Code == code
}

// parseAPIError decodes an error body: the /v2 structured envelope
// {"error":{"code","message","request_id"}}, the /v1 free-text
// {"error":"..."} shape, or — for non-JSON bodies — the raw text.
func parseAPIError(status int, body []byte) *APIError {
	var probe struct {
		Error json.RawMessage `json:"error"`
	}
	if err := json.Unmarshal(body, &probe); err == nil && len(probe.Error) > 0 {
		switch probe.Error[0] {
		case '{': // /v2 envelope
			var e struct {
				Code      string `json:"code"`
				Message   string `json:"message"`
				RequestID string `json:"request_id"`
			}
			if json.Unmarshal(probe.Error, &e) == nil {
				return &APIError{Status: status, Code: e.Code, Message: e.Message, RequestID: e.RequestID}
			}
		case '"': // /v1 free text
			var msg string
			if json.Unmarshal(probe.Error, &msg) == nil {
				return &APIError{Status: status, Message: msg}
			}
		}
	}
	msg := string(body)
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return &APIError{Status: status, Message: msg}
}

// isJSONError reports whether body parses as either error shape — used
// to tell a real /v2 404 (model_not_found, session_not_found) from the
// mux's plain-text 404 that means the /v2 routes do not exist.
func isJSONError(body []byte) bool {
	var probe struct {
		Error json.RawMessage `json:"error"`
	}
	return json.Unmarshal(body, &probe) == nil && len(probe.Error) > 0
}
