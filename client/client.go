// Package client is the typed Go SDK for a running noble-serve: the
// supported way to call NObLe localization and tracking online instead
// of hand-rolling JSON over HTTP.
//
// A Client speaks the /v2 wire protocol — structured error envelopes
// with machine-readable codes (surfaced as *APIError), server-assigned
// request IDs, per-request deadlines derived from the context, NDJSON
// streaming tracking — and transparently falls back to /v1 against
// older servers (everything except streaming works there too). Failed
// requests are retried with exponential backoff on connection errors
// and 5xx responses, except session appends, which are not idempotent
// and therefore never retried automatically.
//
//	c := client.New("http://localhost:8080")
//	positions, err := c.Localize(ctx, "demo-wifi", fingerprint)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Protocol states: which API generation the server speaks, learned
// lazily from the first /v2 call.
const (
	protoUnknown int32 = iota
	protoV2
	protoV1
)

// Client calls one noble-serve instance. It is safe for concurrent use;
// construct with New.
type Client struct {
	base    string
	hc      *http.Client
	retries int           // extra attempts after the first
	backoff time.Duration // base delay, doubled per retry
	proto   atomic.Int32

	wantFast bool
	fast     *fastTransport // non-nil with WithFastTransport on an http URL

	hook RequestHook // nil unless WithRequestHook
}

// RequestObservation describes one completed wire exchange, as seen by a
// WithRequestHook callback: the logical (unversioned) endpoint, how the
// exchange ended, and how long it took on the wire. Exactly one of the
// failure fields is meaningful: Err is the transport error (Status 0),
// otherwise Status is the HTTP answer (which may still be an API error).
type RequestObservation struct {
	Method   string
	Endpoint string // unversioned, e.g. "/localize"
	Status   int    // 0 when the exchange died in transport
	Err      error  // transport error; nil whenever the server answered
	Duration time.Duration
}

// RequestHook observes completed exchanges. It runs inline on the
// calling goroutine, so it must be fast and must not call back into the
// Client; it may be called concurrently.
type RequestHook func(RequestObservation)

// WithRequestHook installs a per-request observer: load generators and
// the benchmark rig collect wire-level latency and status series here
// without wrapping every call site. The hook sees one observation per
// attempt (a retried request observes once per try; a /v2→/v1 downgrade
// replay is folded into its triggering attempt). Streaming connections
// (TrackStream) bypass the hook — they are not request/response.
func WithRequestHook(h RequestHook) Option { return func(c *Client) { c.hook = h } }

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// custom transports, instrumentation).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a retryable request (connection
// error, 5xx) is re-sent after the first attempt, and the base backoff
// delay (doubled per retry). WithRetries(0, 0) disables retries.
func WithRetries(n int, base time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = n, base }
}

// WithV1 pins the client to the /v1 protocol (no /v2 probe). Mostly for
// tests and very old servers.
func WithV1() Option { return func(c *Client) { c.proto.Store(protoV1) } }

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080"). Defaults: a dedicated transport with ample
// per-host connection reuse (fleet workloads hit one host hard), 2
// retries with 50ms base backoff.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		retries: 2,
		backoff: 50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	if c.hc == nil {
		tr := &http.Transport{
			MaxIdleConns:        0, // unlimited
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
			// Responses are small JSON; compression costs more than it saves.
			DisableCompression: true,
		}
		c.hc = &http.Client{Transport: tr}
	}
	if c.wantFast {
		c.fast = newFastTransport(c.base) // nil (net/http fallback) for https
	}
	return c
}

// BaseURL returns the server this client talks to.
func (c *Client) BaseURL() string { return c.base }

// speaksV1 reports whether the client has fallen back to /v1.
func (c *Client) speaksV1() bool { return c.proto.Load() == protoV1 }

// versioned maps an unversioned endpoint ("/localize") onto the wire
// path for the protocol currently in use.
func (c *Client) versioned(endpoint string) string {
	if c.speaksV1() {
		if endpoint == "/health" {
			return "/healthz" // /v1 never versioned its health check
		}
		return "/v1" + endpoint
	}
	return "/v2" + endpoint
}

// retryable reports whether a failed attempt may be re-sent: any
// transport error (the request may never have reached the server), or
// a 5xx answer, which for the pure inference endpoints is safe to
// repeat. The one non-idempotent call, Session.Append, bypasses this
// machinery entirely (it uses roundTrip directly, one attempt).
func retryable(status int, err error) bool {
	return err != nil || status >= 500
}

// doRaw runs one JSON exchange against endpoint with retries and
// protocol fallback, returning the 2xx response body.
func (c *Client) doRaw(ctx context.Context, method, endpoint string, body []byte) ([]byte, error) {
	attempts := 1 + c.retries
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff << (attempt - 1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(delay):
			}
		}
		status, raw, err := c.roundTrip(ctx, method, endpoint, body)
		if err == nil && status < 300 {
			return raw, nil
		}
		if err == nil {
			lastErr = parseAPIError(status, raw)
		} else {
			lastErr = err
		}
		if !retryable(status, err) {
			return nil, lastErr
		}
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// do is doRaw plus decoding the response into out (unless out is nil).
func (c *Client) do(ctx context.Context, method, endpoint string, body []byte, out any) error {
	raw, err := c.doRaw(ctx, method, endpoint, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// roundTrip sends one attempt, handling the v2→v1 downgrade: a 404
// whose body is not a JSON error (the mux's plain "404 page not found")
// means the route family does not exist, so the client pins /v1 and
// replays the attempt there.
func (c *Client) roundTrip(ctx context.Context, method, endpoint string, body []byte) (int, []byte, error) {
	var t0 time.Time
	if c.hook != nil {
		t0 = time.Now()
	}
	status, raw, err := c.send(ctx, method, c.versioned(endpoint), body)
	if err == nil && status == http.StatusNotFound && !c.speaksV1() && !isJSONError(raw) {
		c.proto.Store(protoV1)
		status, raw, err = c.send(ctx, method, c.versioned(endpoint), body)
	} else if err == nil && !c.speaksV1() {
		c.proto.Store(protoV2)
	}
	if c.hook != nil {
		c.hook(RequestObservation{
			Method:   method,
			Endpoint: endpoint,
			Status:   status,
			Err:      err,
			Duration: time.Since(t0),
		})
	}
	return status, raw, err
}

// send performs one HTTP exchange and slurps the response.
func (c *Client) send(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	if c.fast != nil {
		var hdr [][2]string
		if body != nil {
			hdr = append(hdr, [2]string{"Content-Type", "application/json"})
		}
		if ms, ok := deadlineMs(ctx); ok {
			hdr = append(hdr, [2]string{"X-Deadline-Ms", strconv.FormatInt(ms, 10)})
		}
		if id, ok := traceID(ctx); ok {
			hdr = append(hdr, [2]string{"X-Trace-Id", id})
		}
		return c.fast.roundTrip(ctx, method, path, hdr, body)
	}
	return c.sendHTTP(ctx, method, path, body)
}

// sendHTTP is the net/http exchange (always used for responses the fast
// transport cannot frame, like the chunked /metrics text).
func (c *Client) sendHTTP(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the context deadline to the server so an expired
	// request is dropped from the batch queue instead of computed for
	// a caller that stopped listening. (/v1 servers ignore the header.)
	if ms, ok := deadlineMs(ctx); ok {
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(ms, 10))
	}
	if id, ok := traceID(ctx); ok {
		req.Header.Set("X-Trace-Id", id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, raw, nil
}

// traceIDKey carries a caller-chosen trace ID on the context.
type traceIDKey struct{}

// WithTraceID returns a context whose requests carry the given trace ID
// in the X-Trace-Id header. The server adopts it as the request's trace
// ID (sanitized, capped at 64 bytes), so the caller can later pull the
// exact request's timeline out of /debug/traces — the handle that ties
// a fleet-side observation ("this call was slow") to the server-side
// per-stage breakdown. Servers without tracing ignore the header.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// traceID extracts a WithTraceID value, if any.
func traceID(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(traceIDKey{}).(string)
	return id, ok && id != ""
}

// deadlineMs converts a context deadline into the X-Deadline-Ms value.
func deadlineMs(ctx context.Context) (int64, bool) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms, true
}

// marshal encodes a request body, panicking on programmer error (the
// wire types here always marshal).
func marshal(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("client: encoding request: %v", err))
	}
	return raw
}

// Localize asks the named Wi-Fi model for positions, one per
// fingerprint, in order. This is the fleet hot path, so both directions
// go through the hand-rolled wire layer (fastwire.go) with an
// encoding/json fallback on the decode.
func (c *Client) Localize(ctx context.Context, model string, fingerprints ...[]float64) ([]Position, error) {
	return c.localizeBody(ctx, appendLocalizeRequest(nil, model, fingerprints))
}

// localizeBody sends an encoded localize request and decodes the
// positions (fast path first, encoding/json fallback).
func (c *Client) localizeBody(ctx context.Context, body []byte) ([]Position, error) {
	raw, err := c.doRaw(ctx, http.MethodPost, "/localize", body)
	if err != nil {
		return nil, err
	}
	var results []Position
	if parseLocalizeResponse(raw, &results) {
		return results, nil
	}
	var resp struct {
		Results []Position `json:"results"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// PreparedLocalize is a localize request encoded once and reusable
// across many calls — for senders that replay a fixed set of payloads
// at high rate (load generators, synthetic monitors, batch re-scorers)
// where re-encoding identical fingerprints would dominate client CPU.
type PreparedLocalize struct {
	body []byte
}

// PrepareLocalize encodes a localize request for repeated sending.
func PrepareLocalize(model string, fingerprints ...[]float64) *PreparedLocalize {
	return &PreparedLocalize{body: appendLocalizeRequest(nil, model, fingerprints)}
}

// LocalizePrepared sends a prepared request; otherwise identical to
// Localize.
func (c *Client) LocalizePrepared(ctx context.Context, p *PreparedLocalize) ([]Position, error) {
	return c.localizeBody(ctx, p.body)
}

// Track asks the named IMU model to decode path ends, one per path, in
// order.
func (c *Client) Track(ctx context.Context, model string, paths []Path) ([]TrackResult, error) {
	var resp struct {
		RequestID string        `json:"request_id"`
		Results   []TrackResult `json:"results"`
	}
	body := marshal(map[string]any{"model": model, "paths": paths})
	if err := c.do(ctx, http.MethodPost, "/track", body, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Models lists the models registered on the server.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var resp struct {
		Models []ModelInfo `json:"models"`
	}
	if err := c.do(ctx, http.MethodGet, "/models", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Models, nil
}

// Health reports server liveness.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/health", nil, &h)
	return h, err
}

// Metrics returns the server's raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	status, raw, err := c.sendHTTP(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		return "", parseAPIError(status, raw)
	}
	return string(raw), nil
}
