package client

import (
	"strconv"
)

// Hand-rolled JSON for the localize hot path, mirroring the server's
// fastjson layer: at fleet rates the reflection-driven encoding/json
// machinery costs more client CPU than the request itself, and on a
// gateway (or a load generator sharing cores with the server) that
// overhead is real throughput. The encoder always applies — the request
// shape is exact by construction. The decoder recognizes the exact
// response shape {"request_id"?,"model","results":[{x,y,class,building,
// floor}]} of both protocol versions and bails out to encoding/json on
// anything else, keeping behavior identical.

// appendLocalizeRequest renders {"model":M,"fingerprints":[[...],...]}.
func appendLocalizeRequest(b []byte, model string, fingerprints [][]float64) []byte {
	b = append(b, `{"model":`...)
	b = strconv.AppendQuote(b, model)
	b = append(b, `,"fingerprints":[`...)
	for i, fp := range fingerprints {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '[')
		for j, v := range fp {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
		}
		b = append(b, ']')
	}
	b = append(b, ']', '}')
	return b
}

// parseLocalizeResponse attempts the fast parse of a localize response
// body, reporting whether it succeeded. On false the caller re-parses
// with encoding/json.
func parseLocalizeResponse(data []byte, out *[]Position) bool {
	p := &wireScanner{buf: data}
	if !p.expect('{') {
		return false
	}
	for {
		key, ok := p.simpleString()
		if !ok || !p.expect(':') {
			return false
		}
		switch key {
		case "request_id", "model":
			if _, ok := p.simpleString(); !ok {
				return false
			}
		case "results":
			if !p.expect('[') {
				return false
			}
			*out = (*out)[:0]
			if p.peek() == ']' {
				p.pos++
			} else {
				for {
					pos, ok := p.position()
					if !ok {
						return false
					}
					*out = append(*out, pos)
					if p.peek() == ',' {
						p.pos++
						continue
					}
					break
				}
				if !p.expect(']') {
					return false
				}
			}
		default:
			return false // unknown key: let encoding/json decide
		}
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if !p.expect('}') {
		return false
	}
	p.skipSpace()
	return p.pos == len(p.buf)
}

// position parses one {"x":..,"y":..,"class":..,"building":..,"floor":..}
// object (keys in any order).
func (p *wireScanner) position() (Position, bool) {
	var pos Position
	if !p.expect('{') {
		return pos, false
	}
	for {
		key, ok := p.simpleString()
		if !ok || !p.expect(':') {
			return pos, false
		}
		v, ok := p.number()
		if !ok {
			return pos, false
		}
		switch key {
		case "x":
			pos.X = v
		case "y":
			pos.Y = v
		case "class":
			pos.Class = int(v)
		case "building":
			pos.Building = int(v)
		case "floor":
			pos.Floor = int(v)
		default:
			return pos, false
		}
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if !p.expect('}') {
		return pos, false
	}
	return pos, true
}

// wireScanner is a minimal JSON tokenizer over a byte slice (the SDK's
// copy of the server's scanner; the packages share no code so the SDK
// stays dependency-free for embedders).
type wireScanner struct {
	buf []byte
	pos int
}

func (p *wireScanner) skipSpace() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (p *wireScanner) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.buf) {
		return 0
	}
	return p.buf[p.pos]
}

// expect consumes c, reporting whether it was next.
func (p *wireScanner) expect(c byte) bool {
	if p.peek() != c {
		return false
	}
	p.pos++
	return true
}

// simpleString parses a quoted string without escape sequences (any
// backslash bails out to the slow path).
func (p *wireScanner) simpleString() (string, bool) {
	if !p.expect('"') {
		return "", false
	}
	start := p.pos
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case '\\':
			return "", false
		case '"':
			s := string(p.buf[start:p.pos])
			p.pos++
			return s, true
		default:
			p.pos++
		}
	}
	return "", false
}

// number parses one JSON number token. Responses come from our own
// encoder, so the permissive strconv grammar is fine here — a malformed
// number still fails ParseFloat and bails to encoding/json.
func (p *wireScanner) number() (float64, bool) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.buf) {
		switch c := p.buf[p.pos]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			p.pos++
		default:
			goto done
		}
	}
done:
	if p.pos == start {
		return 0, false
	}
	v, err := strconv.ParseFloat(string(p.buf[start:p.pos]), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
