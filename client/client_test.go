package client_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noble/client"
	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/imu"
	"noble/internal/serve"
)

// Tiny fixture models, trained once per test binary (same spec as the
// serve package's own fixtures).
var (
	fixOnce   sync.Once
	wifiDS    *dataset.WiFi
	wifiModel *core.WiFiModel
	imuDS     *imu.PathDataset
	imuModel  *core.IMUModel
)

func fixtures(t *testing.T) {
	t.Helper()
	fixOnce.Do(func() {
		dcfg := dataset.SmallIPINConfig()
		dcfg.NumWAPs = 16
		dcfg.RefSpacing = 8
		dcfg.SamplesPerRef = 3
		dcfg.TestSamplesPerRef = 1
		dcfg.Seed = 11
		wifiDS = dataset.SynthIPIN(dcfg)
		wcfg := core.DefaultWiFiConfig()
		wcfg.Hidden = []int{16}
		wcfg.Epochs = 3
		wcfg.TauFine = 1
		wcfg.TauCoarse = 8
		wifiModel = core.TrainWiFi(wifiDS, wcfg)

		sensors := imu.DefaultConfig()
		sensors.ReadingsPerSegment = 32
		sensors.TotalSegments = 40
		bundle := &serve.IMUBundle{
			Spacing: 12, Sensors: sensors, Seed: 5,
			Paths: imu.PathConfig{
				NumPaths: 120, MaxLen: 4, Frames: 3,
				TrainFrac: 0.7, ValFrac: 0.1, Seed: 7,
			},
		}
		icfg := core.DefaultIMUConfig()
		icfg.ProjDim = 8
		icfg.Hidden = []int{16, 16}
		icfg.Tau = 2
		icfg.Epochs = 3
		bundle.Config = icfg
		imuDS = bundle.BuildIMUDataset()
		imuModel = core.TrainIMU(imuDS, icfg)
	})
}

// newServer spins a real serve.Server over the fixture models.
func newServer(t *testing.T, window time.Duration) *httptest.Server {
	t.Helper()
	fixtures(t)
	reg := serve.NewRegistry("", t.Logf)
	reg.Add(&serve.Model{Name: "wifi", Kind: serve.KindWiFi, WiFi: wifiModel})
	reg.Add(&serve.Model{Name: "imu", Kind: serve.KindIMU, IMU: imuModel})
	ts := httptest.NewServer(serve.New(serve.Config{Registry: reg, BatchWindow: window, MaxBatch: 64}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// v1Only wraps a server so every /v2 route 404s like a pre-/v2 build.
func v1Only(t *testing.T, ts *httptest.Server) *httptest.Server {
	t.Helper()
	inner := ts.Config.Handler
	v1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v2/") {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(v1.Close)
	return v1
}

func TestLocalizeAgainstV2AndV1(t *testing.T) {
	ts := newServer(t, 0)
	for name, url := range map[string]string{"v2": ts.URL, "v1-fallback": v1Only(t, ts).URL} {
		t.Run(name, func(t *testing.T) {
			c := client.New(url)
			got, err := c.Localize(context.Background(), "wifi", wifiDS.Test[0].Features, wifiDS.Test[1].Features)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 {
				t.Fatalf("%d results", len(got))
			}
			for i, smp := range []int{0, 1} {
				want := wifiModel.Predict(wifiDS.Test[smp].Features)
				if got[i].X != want.Pos.X || got[i].Y != want.Pos.Y || got[i].Class != want.Class ||
					got[i].Building != want.Building || got[i].Floor != want.Floor {
					t.Fatalf("result %d: %+v, model predicts %+v", i, got[i], want)
				}
			}
			// Later calls keep working on the learned protocol.
			if _, err := c.Models(context.Background()); err != nil {
				t.Fatalf("models after first call: %v", err)
			}
			h, err := c.Health(context.Background())
			if err != nil || h.Status != "ok" || h.Models != 2 {
				t.Fatalf("health: %+v err %v", h, err)
			}
		})
	}
}

func TestTrackMatchesModel(t *testing.T) {
	ts := newServer(t, 0)
	c := client.New(ts.URL)
	p := imuDS.Test[0]
	got, err := c.Track(context.Background(), "imu", []client.Path{{
		Start: client.XY{X: p.Start.X, Y: p.Start.Y}, Features: p.Features,
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := imuModel.PredictPaths([]imu.Path{p})[0]
	if got[0].End.X != want.End.X || got[0].Class != want.Class {
		t.Fatalf("track %+v != model %+v", got[0], want)
	}
}

func TestTypedErrors(t *testing.T) {
	ts := newServer(t, 0)
	c := client.New(ts.URL)
	_, err := c.Localize(context.Background(), "nope", wifiDS.Test[0].Features)
	if !client.IsCode(err, client.CodeModelNotFound) {
		t.Fatalf("err %v, want model_not_found", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.RequestID == "" {
		t.Fatalf("APIError %+v", apiErr)
	}

	// Against a /v1 server the code is empty but status and message
	// survive.
	cv1 := client.New(v1Only(t, ts).URL)
	_, err = cv1.Localize(context.Background(), "nope", wifiDS.Test[0].Features)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != "" || apiErr.Message == "" {
		t.Fatalf("v1 APIError %+v (err %v)", apiErr, err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts := newServer(t, 0)
	c := client.New(ts.URL)
	ctx := context.Background()
	seg := imuDS.Test[0].Features[:imuModel.SegmentDim()]

	sess := c.Session("sdk-dev")
	st, err := sess.Append(ctx, client.AppendRequest{Model: "imu", Start: &client.XY{X: 5, Y: 6}})
	if err != nil || !st.Created || st.Model != "imu" {
		t.Fatalf("create: %+v err %v", st, err)
	}
	st, err = sess.Append(ctx, client.AppendRequest{Features: seg})
	if err != nil || st.Steps != 1 || len(st.Results) != 1 {
		t.Fatalf("append: %+v err %v", st, err)
	}
	st, err = sess.Append(ctx, client.AppendRequest{
		Features: seg, WiFiModel: "wifi", Fingerprint: wifiDS.Test[2].Features,
	})
	if err != nil || !st.ReAnchored || st.Anchor == nil {
		t.Fatalf("fix: %+v err %v", st, err)
	}
	if st, err = sess.Get(ctx); err != nil || st.Steps != 2 {
		t.Fatalf("get: %+v err %v", st, err)
	}
	// Binding the session to another model is a typed conflict.
	if _, err := sess.Append(ctx, client.AppendRequest{Model: "other"}); !client.IsCode(err, client.CodeSessionConflict) {
		t.Fatalf("conflict err %v", err)
	}
	if err := sess.Delete(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Get(ctx); !client.IsCode(err, client.CodeSessionNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
}

func TestRetriesOn5xxThenSuccess(t *testing.T) {
	var hits atomic.Int32
	mock := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":{"code":"inference_failed","message":"transient"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"request_id":"r","model":"m","results":[{"x":1,"y":2,"class":3,"building":0,"floor":0}]}`))
	}))
	defer mock.Close()
	c := client.New(mock.URL, client.WithRetries(3, time.Millisecond))
	got, err := c.Localize(context.Background(), "m", []float64{0.1})
	if err != nil || len(got) != 1 || got[0].X != 1 {
		t.Fatalf("got %+v err %v after retries", got, err)
	}
	if hits.Load() != 3 {
		t.Fatalf("%d attempts, want 3 (2 failures + success)", hits.Load())
	}
}

func TestRetriesExhaustedSurfaceLastError(t *testing.T) {
	mock := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"server_draining","message":"draining"}}`))
	}))
	defer mock.Close()
	c := client.New(mock.URL, client.WithRetries(2, time.Millisecond))
	_, err := c.Localize(context.Background(), "m", []float64{0.1})
	if !client.IsCode(err, client.CodeDraining) {
		t.Fatalf("err %v, want server_draining", err)
	}
}

func TestRetriesOnConnectionError(t *testing.T) {
	// A server that dies after the first TCP accept: the retry dials a
	// dead port and the transport error surfaces.
	mock := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := mock.URL
	mock.Close()
	c := client.New(url, client.WithRetries(1, time.Millisecond))
	if _, err := c.Localize(context.Background(), "m", []float64{0.1}); err == nil {
		t.Fatal("want a connection error")
	}
}

func TestAppendNeverRetries(t *testing.T) {
	var hits atomic.Int32
	mock := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":{"code":"inference_failed","message":"boom"}}`))
	}))
	defer mock.Close()
	c := client.New(mock.URL, client.WithRetries(5, time.Millisecond))
	if _, err := c.Session("d").Append(context.Background(), client.AppendRequest{Model: "m"}); err == nil {
		t.Fatal("want error")
	}
	if hits.Load() != 1 {
		t.Fatalf("append hit the server %d times; it must never be retried", hits.Load())
	}
}

func TestFastTransportLargeAndChunkedResponses(t *testing.T) {
	// Go's HTTP server chunk-encodes any body over its 2 KiB sniff
	// buffer, so a modest localize batch already exercises the fast
	// transport's chunked decoding; the answers must match net/http's.
	ts := newServer(t, 0)
	fast := client.New(ts.URL, client.WithFastTransport())
	std := client.New(ts.URL)
	fps := make([][]float64, 60) // ~60 results ≈ 6 KB body, well past 2 KiB
	for i := range fps {
		fps[i] = wifiDS.Test[i%len(wifiDS.Test)].Features
	}
	got, err := fast.Localize(context.Background(), "wifi", fps...)
	if err != nil {
		t.Fatalf("fast transport on chunked response: %v", err)
	}
	want, err := std.Localize(context.Background(), "wifi", fps...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: fast %+v != net/http %+v", i, got[i], want[i])
		}
	}
	// And the whole session lifecycle over the fast transport.
	sess := fast.Session("fast-dev")
	if _, err := sess.Append(context.Background(), client.AppendRequest{Model: "imu", Start: &client.XY{}}); err != nil {
		t.Fatalf("fast append: %v", err)
	}
	if err := sess.Delete(context.Background()); err != nil {
		t.Fatalf("fast delete: %v", err)
	}
}

func TestAppendSurfacesPartialCommit(t *testing.T) {
	// A mid-request inference failure answers 500 with the committed
	// prefix in the body; Append must return that state alongside the
	// *APIError so the caller can resend only the unreported tail.
	bodies := map[string]string{
		"v2": `{"request_id":"r1","session":"d","model":"m","steps":3,"position":{"x":1,"y":2},
		       "results":[{"step":3,"end":{"x":1,"y":2},"class":7,"displacement":{"x":0,"y":0}}],
		       "error":{"code":"inference_failed","message":"inference at segment 1: boom","request_id":"r1"}}`,
		"v1": `{"session":"d","model":"m","steps":3,"position":{"x":1,"y":2},
		       "results":[{"step":3,"end":{"x":1,"y":2},"class":7,"displacement":{"x":0,"y":0}}],
		       "error":"inference at segment 1: boom"}`,
	}
	for name, body := range bodies {
		t.Run(name, func(t *testing.T) {
			mock := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				w.Write([]byte(body))
			}))
			defer mock.Close()
			c := client.New(mock.URL)
			st, err := c.Session("d").Append(context.Background(), client.AppendRequest{})
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
				t.Fatalf("err %v, want 500 APIError", err)
			}
			if st.Session != "d" || st.Steps != 3 || len(st.Results) != 1 || st.Results[0].Class != 7 {
				t.Fatalf("partial-commit state lost: %+v", st)
			}
		})
	}
}

func TestDeadlineHeaderPropagates(t *testing.T) {
	var sawDeadline atomic.Bool
	mock := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Deadline-Ms") != "" {
			sawDeadline.Store(true)
		}
		w.Write([]byte(`{"results":[]}`))
	}))
	defer mock.Close()
	c := client.New(mock.URL)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.Localize(ctx, "m", []float64{0.1}); err != nil {
		t.Fatal(err)
	}
	if !sawDeadline.Load() {
		t.Fatal("context deadline must be propagated as X-Deadline-Ms")
	}
}

func TestTrackStreamInteractive(t *testing.T) {
	ts := newServer(t, 0)
	c := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	segDim := imuModel.SegmentDim()
	seg := func(i int) []float64 { return imuDS.Test[i].Features[:segDim] }

	st, err := c.TrackStream(ctx, client.StreamOpen{AppendRequest: client.AppendRequest{
		Model: "imu", Start: &client.XY{X: 1, Y: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.RequestID() == "" {
		t.Fatal("stream must carry a request id")
	}

	// The open line answers first.
	u, err := st.Recv()
	if err != nil || u.Seq != 1 || u.Steps != 0 {
		t.Fatalf("open ack: %+v err %v", u, err)
	}

	// Interactive: each sent segment gets its estimate back before the
	// next is sent.
	for i := 0; i < 3; i++ {
		if err := st.Send(client.AppendRequest{Features: seg(i)}); err != nil {
			t.Fatal(err)
		}
		u, err = st.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if u.Seq != i+2 || u.Steps != i+1 || len(u.Results) != 1 {
			t.Fatalf("update %d: %+v", i, u)
		}
	}

	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("after CloseSend: %v, want EOF", err)
	}
}

func TestTrackStreamRequiresV2(t *testing.T) {
	ts := newServer(t, 0)
	c := client.New(v1Only(t, ts).URL)
	// Learn the protocol with one call, then streaming must refuse.
	if _, err := c.Models(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TrackStream(context.Background(), client.StreamOpen{}); err == nil {
		t.Fatal("streaming against a /v1 server must error")
	}
}
