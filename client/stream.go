package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// StreamOpen configures a tracking stream: the fields of the first
// NDJSON line. Session names a server-side session to attach to (or
// create); left empty, the server runs the stream on an ephemeral
// session deleted when the connection ends.
type StreamOpen struct {
	Session string `json:"session,omitempty"`
	AppendRequest
}

// StreamUpdate is one decoded estimate line from a tracking stream,
// correlated to the corresponding input line by 1-based Seq.
type StreamUpdate struct {
	Seq int `json:"seq"`
	SessionState
	Error *StreamError `json:"error,omitempty"`
}

// StreamError is a structured line-level failure inside a stream; the
// server terminates the stream after sending one.
type StreamError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id"`
}

// TrackStream is one NDJSON streaming-tracking connection
// (POST /v2/track/stream): the device sends IMU segments with Send and
// receives per-segment estimates with Recv, on a single connection.
// Send and Recv may run from different goroutines (one each).
type TrackStream struct {
	pw   *io.PipeWriter
	resp *http.Response
	dec  *json.Decoder

	sendMu sync.Mutex
	enc    *json.Encoder
}

// TrackStream opens a streaming-tracking connection and sends the open
// line. Requires a /v2 server (there is no /v1 equivalent to fall back
// to). The first Recv answers the open line itself (its decode of any
// segments carried in open).
func (c *Client) TrackStream(ctx context.Context, open StreamOpen) (*TrackStream, error) {
	if c.speaksV1() {
		return nil, fmt.Errorf("client: track streaming requires a /v2 server")
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/track/stream", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		pw.Close()
		return nil, parseAPIError(resp.StatusCode, raw)
	}
	st := &TrackStream{pw: pw, resp: resp, dec: json.NewDecoder(resp.Body), enc: json.NewEncoder(pw)}
	if err := st.encode(open); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

// RequestID returns the server-assigned ID for this stream.
func (s *TrackStream) RequestID() string { return s.resp.Header.Get("X-Request-Id") }

// encode writes one NDJSON line.
func (s *TrackStream) encode(v any) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	return s.enc.Encode(v)
}

// Send streams one more request line: IMU segments and/or a WiFi
// re-anchor fingerprint.
func (s *TrackStream) Send(req AppendRequest) error { return s.encode(req) }

// Recv reads the next estimate line. A line-level server failure
// returns the update (with any partially committed steps) alongside an
// *APIError; end of stream returns io.EOF.
func (s *TrackStream) Recv() (StreamUpdate, error) {
	var u StreamUpdate
	if err := s.dec.Decode(&u); err != nil {
		return u, err
	}
	if u.Error != nil {
		return u, &APIError{
			Status:    http.StatusInternalServerError,
			Code:      u.Error.Code,
			Message:   u.Error.Message,
			RequestID: u.Error.RequestID,
		}
	}
	return u, nil
}

// CloseSend ends the request side: the server finishes the stream and
// Recv drains the remaining lines before io.EOF.
func (s *TrackStream) CloseSend() error { return s.pw.Close() }

// Close tears the stream down entirely.
func (s *TrackStream) Close() error {
	s.pw.Close()
	return s.resp.Body.Close()
}
