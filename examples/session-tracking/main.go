// Stateful tracking sessions: the serving-layer walkthrough for the
// paper's hybrid tracking setup, driven through the typed client SDK. A
// device streams IMU segments to the server one request at a time; the
// server keeps the path state (anchor, sliding feature window, estimate)
// in a per-device session, decodes each step through the batched IMU
// model, and — when the device also reports a WiFi scan — re-anchors
// the trajectory through the localize path, fusing the paper's two
// model kinds into one track.
//
// This example trains two small models, starts the real HTTP server
// in-process, and drives it with noble/client — first request by
// request against the session endpoint, then over the /v2 NDJSON
// streaming protocol (one connection, one line per segment).
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"noble/client"
	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/imu"
	"noble/internal/serve"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// --- Train two small models (seconds, not minutes). In a real
	// deployment these come from `noble-train -bundle` and both are
	// surveyed in the same building frame; here each lives on its own
	// small synthetic map, which is enough to show the mechanics.
	fmt.Println("training a small IMU tracker and WiFi localizer...")
	net := imu.NewCampusNetwork(8)
	sensors := imu.DefaultConfig()
	sensors.ReadingsPerSegment = 64
	sensors.TotalSegments = 120
	track := imu.Synthesize(net, sensors, 42)
	pathCfg := imu.PathConfig{
		NumPaths: 600, MaxLen: 8, Frames: 4,
		TrainFrac: 0.7, ValFrac: 0.1, Seed: 7,
	}
	ds := imu.BuildPaths(track, pathCfg)
	imuCfg := core.DefaultIMUConfig()
	imuCfg.Hidden = []int{48, 48}
	imuCfg.Tau = 1.0
	imuCfg.Epochs = 15
	imuModel := core.TrainIMU(ds, imuCfg)

	wifiData := dataset.SmallIPINConfig()
	wifiData.NumWAPs = 24
	wifiData.RefSpacing = 6
	wifiData.SamplesPerRef = 3
	wifiDS := dataset.SynthIPIN(wifiData)
	wifiCfg := core.DefaultWiFiConfig()
	wifiCfg.Hidden = []int{32}
	wifiCfg.Epochs = 5
	wifiCfg.TauFine = 1
	wifiCfg.TauCoarse = 8
	wifiModel := core.TrainWiFi(wifiDS, wifiCfg)

	// --- Serve both models. SessionTTL would evict idle devices in a
	// long-running deployment; the sweeper runs via Sessions().Run.
	reg := serve.NewRegistry("", log.Printf)
	reg.Add(&serve.Model{Name: "imu", Kind: serve.KindIMU, IMU: imuModel})
	reg.Add(&serve.Model{Name: "wifi", Kind: serve.KindWiFi, WiFi: wifiModel})
	srv := httptest.NewServer(serve.New(serve.Config{Registry: reg, BatchWindow: 0}).Handler())
	defer srv.Close()
	fmt.Printf("serving on %s\n\n", srv.URL)

	// --- The SDK client: speaks /v2 (structured errors, request IDs,
	// deadlines), falls back to /v1 automatically on older servers.
	c := client.New(srv.URL)
	sess := c.Session("phone-1")
	must := func(st client.SessionState, err error) client.SessionState {
		if err != nil {
			log.Fatalf("session request failed: %v", err)
		}
		return st
	}

	// --- Walk a device along a recorded walk: create the session at the
	// walk's true start, then append one segment per request — what a
	// phone would send every few seconds.
	walk := track.Walks[0]
	start := net.Refs[walk.RefSeq[0]]
	segDim := imuModel.SegmentDim()
	r := must(sess.Append(ctx, client.AppendRequest{
		Model: "imu",
		Start: &client.XY{X: start.X, Y: start.Y},
	}))
	fmt.Printf("created session (model %s) anchored at (%.1f, %.1f)\n", r.Model, r.Position.X, r.Position.Y)

	steps := 8
	if steps > len(walk.Segments) {
		steps = len(walk.Segments)
	}
	for i := 0; i < steps; i++ {
		feats := imu.SegmentFeatures(walk.Segments[i].Readings, imuModel.Frames())
		if len(feats) != segDim {
			log.Fatalf("segment feature width %d != model segment_dim %d", len(feats), segDim)
		}
		r = must(sess.Append(ctx, client.AppendRequest{Features: feats}))
		truth := net.Refs[walk.RefSeq[i+1]]
		fmt.Printf("step %2d: estimate (%6.1f, %5.1f)  truth (%6.1f, %5.1f)  traveled (%.1f, %.1f)\n",
			r.Steps, r.Position.X, r.Position.Y, truth.X, truth.Y, r.Traveled.X, r.Traveled.Y)
	}

	// --- Fuse a WiFi fix. The scan is a surveyed test fingerprint; the
	// server localizes it through the same batched path as /v2/localize
	// and snaps the session there. Dead reckoning restarts from the fix.
	scan := wifiDS.Test[0]
	before := r.Position
	r = must(sess.Append(ctx, client.AppendRequest{
		WiFiModel:   "wifi",
		Fingerprint: scan.Features,
		Features:    imu.SegmentFeatures(walk.Segments[steps%len(walk.Segments)].Readings, imuModel.Frames()),
	}))
	fmt.Printf("\nwifi fix: estimate jumped (%.1f, %.1f) -> anchor (%.1f, %.1f); surveyed scan was at (%.1f, %.1f)\n",
		before.X, before.Y, r.Anchor.X, r.Anchor.Y, scan.Pos.X, scan.Pos.Y)
	fmt.Printf("next step after the fix: (%.1f, %.1f), traveled (%.1f, %.1f) since the fix\n",
		r.Position.X, r.Position.Y, r.Traveled.X, r.Traveled.Y)

	// --- Typed errors: the SDK surfaces the /v2 machine-readable code.
	if _, err := sess.Append(ctx, client.AppendRequest{Model: "wifi"}); client.IsCode(err, client.CodeSessionConflict) {
		fmt.Printf("\nrebinding the session to another model is refused: %v\n", err)
	}

	// --- Session introspection and cleanup, as a device manager would.
	state := must(sess.Get(ctx))
	fmt.Printf("\nGET session: %d steps, position (%.1f, %.1f)\n", state.Steps, state.Position.X, state.Position.Y)
	if err := sess.Delete(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("DELETE session: done")

	// --- The same walk over the /v2 NDJSON stream: one connection, one
	// line per segment, estimates flushed per line.
	fmt.Println("\nstreaming the same walk over POST /v2/track/stream:")
	st, err := c.TrackStream(ctx, client.StreamOpen{AppendRequest: client.AppendRequest{
		Model: "imu",
		Start: &client.XY{X: start.X, Y: start.Y},
	}})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Recv(); err != nil { // ack of the open line
		log.Fatal(err)
	}
	for i := 0; i < 4 && i < len(walk.Segments); i++ {
		if err := st.Send(client.AppendRequest{
			Features: imu.SegmentFeatures(walk.Segments[i].Readings, imuModel.Frames()),
		}); err != nil {
			log.Fatal(err)
		}
		u, err := st.Recv()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stream line %d: estimate (%6.1f, %5.1f) after %d steps\n",
			u.Seq, u.Position.X, u.Position.Y, u.Steps)
	}
	if err := st.CloseSend(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stream closed; its ephemeral session was cleaned up server-side")
}
