// IMU device tracking: the §V application. Synthesizes campus walks with
// the paper's collection protocol, builds the path dataset, trains the
// projection→displacement→location model, and compares it against the
// Deep Regression baseline, including the §V-D energy budget.
package main

import (
	"fmt"

	"noble"
)

func main() {
	// Collect two walks over the campus sidewalk network (scaled-down
	// protocol for a quick run; DefaultIMUDataConfig is the paper's).
	net := noble.NewCampusNetwork(6)
	dataCfg := noble.DefaultIMUDataConfig()
	dataCfg.ReadingsPerSegment = 96
	dataCfg.TotalSegments = 160
	track := noble.SynthesizeIMU(net, dataCfg, 42)
	fmt.Printf("collected %d reference locations, %.1f minutes of walking\n",
		len(net.Refs), track.Duration()/60)

	pathCfg := noble.IMUPathConfig{
		NumPaths: 1200, MaxLen: 12, Frames: 6,
		TrainFrac: 0.64, ValFrac: 0.16, Seed: 7,
	}
	ds := noble.BuildIMUPaths(track, pathCfg)
	fmt.Printf("paths: %d train / %d val / %d test\n\n",
		len(ds.Train), len(ds.Validation), len(ds.Test))

	truth := make([]noble.Point, len(ds.Test))
	for i := range ds.Test {
		truth[i] = ds.Test[i].End
	}

	// NObLe tracking model.
	cfg := noble.DefaultIMUConfig()
	cfg.Hidden = []int{64, 64}
	cfg.Tau = 1.0
	cfg.Epochs = 40
	model := noble.TrainIMU(ds, cfg)
	preds := model.PredictPaths(ds.Test)
	ends := make([]noble.Point, len(preds))
	for i, p := range preds {
		ends[i] = p.End
	}
	s := noble.Stats(noble.Errors(ends, truth))
	fmt.Printf("NObLe:           mean %.2f m, median %.2f m\n", s.Mean, s.Median)

	// Deep Regression baseline.
	regCfg := noble.DefaultRegConfig()
	regCfg.Hidden = []int{64, 64}
	regCfg.Epochs = 15
	reg := noble.TrainIMURegression(ds, regCfg)
	sr := noble.Stats(noble.Errors(reg.PredictPaths(ds.Test), truth))
	fmt.Printf("Deep Regression: mean %.2f m, median %.2f m\n\n", sr.Mean, sr.Median)

	// Energy budget for an 8-second path (§V-D).
	budget := noble.JetsonTX2().TrackPath(model.FLOPs(), 8)
	fmt.Printf("energy: %.4f J inference + %.4f J sensors = %.4f J total\n",
		budget.Inference.Energy, budget.Sensor, budget.Total)
	fmt.Printf("GPS alternative: %.3f J per fix → NObLe tracking is %.0fx cheaper\n",
		budget.GPS, budget.Ratio)
}
