// Energy budget: explores the §IV-C / §V-D energy model — how inference
// energy scales with model size on a Jetson-TX2-class device, and where
// the paper's 27× advantage over GPS comes from.
package main

import (
	"fmt"

	"noble"
)

func main() {
	profile := noble.JetsonTX2()
	fmt.Printf("device: %s (%.1e J/MAC + %.1e J overhead)\n\n",
		profile.Name, profile.EnergyPerMAC, profile.BaseEnergy)

	fmt.Println("inference cost vs model size:")
	fmt.Println("MACs        energy (J)  latency (ms)")
	for _, macs := range []int64{10_000, 100_000, 300_000, 1_000_000, 4_000_000, 20_000_000} {
		est := profile.Inference(macs)
		fmt.Printf("%-11d %.5f     %.2f\n", macs, est.Energy, est.Latency*1000)
	}

	// The paper's Wi-Fi model is ≈0.3 MMAC (measured 0.00518 J / 2 ms);
	// its IMU model ≈4 MMAC (measured 0.08599 J / 5 ms).

	fmt.Println("\npath tracking vs GPS (8 s path, §V-D):")
	budget := profile.TrackPath(4_000_000, 8)
	fmt.Printf("  model inference  %.5f J\n", budget.Inference.Energy)
	fmt.Printf("  IMU sensors      %.5f J (%.5f W x 8 s)\n", budget.Sensor, noble.IMUSensorPower)
	fmt.Printf("  total            %.5f J\n", budget.Total)
	fmt.Printf("  one GPS fix      %.5f J\n", budget.GPS)
	fmt.Printf("  advantage        %.1fx (paper reports ~27x)\n", budget.Ratio)

	fmt.Println("\nhow long must a path be before sensors dominate inference?")
	for _, secs := range []float64{1, 4, 8, 30, 120} {
		b := profile.TrackPath(4_000_000, secs)
		fmt.Printf("  %5.0f s path: sensors are %4.1f%% of the budget, GPS ratio %5.1fx\n",
			secs, 100*b.Sensor/b.Total, b.Ratio)
	}
}
