// Quickstart: train NObLe on the small synthetic single-building dataset,
// run one inference, and print error statistics — the minimal end-to-end
// use of the public API.
package main

import (
	"fmt"

	"noble"
)

func main() {
	// 1. Generate a survey dataset (synthetic IPIN2016-like building).
	ds := noble.SynthIPIN(noble.SmallIPINConfig())
	fmt.Printf("dataset: %d train / %d test fingerprints over %d access points\n",
		len(ds.Train), len(ds.Test), ds.NumWAPs)

	// 2. Train NObLe with the paper's configuration.
	cfg := noble.DefaultWiFiConfig()
	cfg.Hidden = []int{64, 64} // small trunk for a small dataset
	cfg.Epochs = 20
	model := noble.TrainWiFi(ds, cfg)
	fmt.Printf("model: %d neighborhood classes (dead space discarded automatically)\n",
		model.Classes())

	// 3. Localize a single fingerprint.
	pred := model.Predict(ds.Test[0].Features)
	fmt.Printf("sample 0: predicted %v (building %d, floor %d), truth %v (floor %d)\n",
		pred.Pos, pred.Building, pred.Floor, ds.Test[0].Pos, ds.Test[0].Floor)

	// 4. Evaluate on the whole test split.
	preds := model.PredictMatrix(noble.FeaturesMatrix(ds.Test))
	positions := make([]noble.Point, len(preds))
	floors := make([]int, len(preds))
	for i, p := range preds {
		positions[i] = p.Pos
		floors[i] = p.Floor
	}
	stats := noble.Stats(noble.Errors(positions, noble.Positions(ds.Test)))
	fmt.Printf("test: mean %.2f m, median %.2f m, floor accuracy %.1f%%\n",
		stats.Mean, stats.Median,
		100*noble.HitRate(floors, noble.FloorLabels(ds.Test)))
}
