// Custom floor plan: shows how a downstream user brings their own space.
// Builds an L-shaped office with a blocked storage area, runs the survey
// protocol on it, trains NObLe, and verifies that predictions never land
// in the blocked area — the structural property the paper argues for.
package main

import (
	"fmt"

	"noble"
)

func main() {
	// An L-shaped office: a 30×20 m wing plus an 18×14 m annex, with a
	// storage rectangle nobody can enter.
	office := &noble.Building{
		ID:   0,
		Name: "office",
		Footprint: noble.Polygon{
			{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 30, Y: 20},
			{X: 18, Y: 20}, {X: 18, Y: 34}, {X: 0, Y: 34},
		},
		Courtyards: []noble.Polygon{
			noble.NewRect(noble.Point{X: 4, Y: 24}, noble.Point{X: 12, Y: 31}).Polygon(),
		},
		Floors: 2,
	}
	plan := &noble.Plan{Name: "custom-office", Buildings: []*noble.Building{office}}

	cfg := noble.WiFiDatasetConfig{
		NumWAPs:           30,
		RefSpacing:        3,
		RefJitter:         0.5,
		SamplesPerRef:     5,
		TestSamplesPerRef: 2,
		TestJitter:        0.3,
		ValFraction:       0.1,
		Seed:              9,
		Radio:             noble.DefaultRadioConfig(),
	}
	ds := noble.GenerateWiFi(plan, cfg)
	fmt.Printf("surveyed %d fingerprints at %d WAPs on a custom plan\n",
		len(ds.Train), ds.NumWAPs)

	trainCfg := noble.DefaultWiFiConfig()
	trainCfg.Hidden = []int{48, 48}
	trainCfg.Epochs = 20
	model := noble.TrainWiFi(ds, trainCfg)

	preds := model.PredictMatrix(noble.FeaturesMatrix(ds.Test))
	pos := make([]noble.Point, len(preds))
	for i, p := range preds {
		pos[i] = p.Pos
	}
	stats := noble.Stats(noble.Errors(pos, noble.Positions(ds.Test)))
	fmt.Printf("test: mean %.2f m, median %.2f m\n", stats.Mean, stats.Median)
	fmt.Printf("on-map rate: %.1f%% (storage area & outside walls are unreachable by construction)\n",
		100*noble.OnMapRate(plan, pos))

	fmt.Println("\npredictions over the L-shaped plan:")
	fmt.Println(noble.ScatterASCII(pos, plan.Bounds().Expand(3), 60, 18))
}
