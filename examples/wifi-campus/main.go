// Wi-Fi campus localization: the paper's headline comparison on the
// multi-building UJIIndoorLoc-like campus. Trains NObLe and the Deep
// Regression baseline on the same fingerprints, prints paper-style error
// tables, and renders ASCII scatter plots showing that NObLe's predictions
// follow the building structure while regression bleeds into courtyards
// and dead space (Fig. 4).
package main

import (
	"fmt"

	"noble"
)

func main() {
	ds := noble.SynthUJI(noble.SmallUJIConfig())
	fmt.Printf("campus: %d buildings, %d floors, %d train fingerprints\n\n",
		ds.NumBuildings, ds.NumFloors, len(ds.Train))

	x := noble.FeaturesMatrix(ds.Test)
	truth := noble.Positions(ds.Test)

	// NObLe.
	nobleCfg := noble.DefaultWiFiConfig()
	nobleCfg.Hidden = []int{64, 64}
	nobleCfg.Epochs = 15
	model := noble.TrainWiFi(ds, nobleCfg)
	nps := model.PredictMatrix(x)
	noblePos := make([]noble.Point, len(nps))
	for i, p := range nps {
		noblePos[i] = p.Pos
	}

	// Deep Regression with the same capacity.
	regCfg := noble.DefaultRegConfig()
	regCfg.Hidden = []int{64, 64}
	regCfg.Epochs = 15
	reg := noble.TrainWiFiRegression(ds, regCfg)
	regPos := reg.PredictBatch(x)

	// Regression Projection: snap off-map predictions back to the map.
	projPos := noble.ProjectPredictions(ds.Plan, regPos)

	fmt.Println("model                  mean(m)  median(m)  on-map")
	for _, row := range []struct {
		name string
		pos  []noble.Point
	}{
		{"Deep Regression", regPos},
		{"Regression Projection", projPos},
		{"NObLe", noblePos},
	} {
		s := noble.Stats(noble.Errors(row.pos, truth))
		fmt.Printf("%-22s %6.2f   %6.2f     %5.1f%%\n",
			row.name, s.Mean, s.Median, 100*noble.OnMapRate(ds.Plan, row.pos))
	}

	bounds := ds.Plan.Bounds().Expand(10)
	fmt.Println("\nground truth (cf. Fig. 1):")
	fmt.Println(noble.ScatterASCII(truth, bounds, 80, 20))
	fmt.Println("Deep Regression predictions (cf. Fig. 4a):")
	fmt.Println(noble.ScatterASCII(regPos, bounds, 80, 20))
	fmt.Println("NObLe predictions (cf. Fig. 4d):")
	fmt.Println(noble.ScatterASCII(noblePos, bounds, 80, 20))
}
