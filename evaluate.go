package noble

import (
	"io"

	"noble/internal/baseline"
	"noble/internal/energy"
	"noble/internal/eval"
	"noble/internal/mat"
)

// Matrix is the dense row-major float64 matrix used throughout the module
// (rows are samples, columns are features).
type Matrix = mat.Dense

// ErrorStats summarizes a position-error distribution.
type ErrorStats = eval.ErrorStats

// Errors returns per-sample Euclidean position errors.
func Errors(pred, truth []Point) []float64 { return eval.Errors(pred, truth) }

// Stats computes mean/median/percentile statistics of error distances.
func Stats(errs []float64) ErrorStats { return eval.Stats(errs) }

// HitRate returns the fraction of exact label matches (building/floor/
// class accuracy).
func HitRate(pred, truth []int) float64 { return eval.HitRate(pred, truth) }

// CDF returns the fraction of errors at or below each level.
func CDF(errs []float64, levels []float64) []float64 { return eval.CDF(errs, levels) }

// OnMapRate returns the fraction of predictions inside accessible space —
// the quantitative version of Fig. 4.
func OnMapRate(plan *Plan, preds []Point) float64 { return eval.OnMapRate(plan, preds) }

// StructureScore returns the mean distance from predictions to the nearest
// accessible position (lower = more structure-aware).
func StructureScore(plan *Plan, preds []Point) float64 { return eval.StructureScore(plan, preds) }

// ScatterASCII renders points as a text scatter plot (the terminal
// stand-in for the paper's figures).
func ScatterASCII(points []Point, bounds Rect, w, h int) string {
	return eval.ScatterASCII(points, bounds, w, h)
}

// ScatterCSV writes x,y rows for external plotting.
func ScatterCSV(w io.Writer, points []Point) error { return eval.ScatterCSV(w, points) }

// Confusion builds a k×k confusion-count matrix for classification heads.
func Confusion(pred, truth []int, k int) [][]int { return eval.Confusion(pred, truth, k) }

// FormatConfusion renders a confusion matrix as text.
func FormatConfusion(m [][]int) string { return eval.FormatConfusion(m) }

// GroupStats computes error statistics per integer group (e.g. per floor).
func GroupStats(errs []float64, groups []int) map[int]ErrorStats {
	return eval.GroupStats(errs, groups)
}

// FormatGroupStats renders per-group statistics sorted by key.
func FormatGroupStats(name string, stats map[int]ErrorStats) string {
	return eval.FormatGroupStats(name, stats)
}

// Baselines (Table II / Table III comparison systems).

// RegConfig configures the deep-regression baselines.
type RegConfig = baseline.RegConfig

// WiFiRegressor is the Deep Regression baseline.
type WiFiRegressor = baseline.WiFiRegressor

// IMURegressor is the IMU Deep Regression baseline.
type IMURegressor = baseline.IMURegressor

// KNNFingerprint is the classical weighted-kNN fingerprinting matcher.
type KNNFingerprint = baseline.KNNFingerprint

// ManifoldRegressor is the Isomap/LLE deep-regression baseline.
type ManifoldRegressor = baseline.ManifoldRegressor

// ManifoldRegConfig configures TrainManifoldRegression.
type ManifoldRegConfig = baseline.ManifoldRegConfig

// ManifoldMethod selects Isomap or LLE.
type ManifoldMethod = baseline.ManifoldMethod

// Manifold embedding methods for ManifoldRegConfig.
const (
	MethodIsomap = baseline.MethodIsomap
	MethodLLE    = baseline.MethodLLE
)

// DefaultRegConfig mirrors NObLe's network capacity, isolating the
// objective as the only difference (§IV-B).
func DefaultRegConfig() RegConfig { return baseline.DefaultRegConfig() }

// TrainWiFiRegression fits the Deep Regression baseline.
func TrainWiFiRegression(ds *WiFiDataset, cfg RegConfig) *WiFiRegressor {
	return baseline.TrainWiFiRegression(ds, cfg)
}

// ProjectPredictions snaps off-map predictions to the nearest accessible
// position (the Regression Projection baseline).
func ProjectPredictions(plan *Plan, preds []Point) []Point {
	return baseline.ProjectPredictions(plan, preds)
}

// NewKNNFingerprint indexes the training split for weighted-kNN matching.
func NewKNNFingerprint(ds *WiFiDataset, k int) *KNNFingerprint {
	return baseline.NewKNNFingerprint(ds, k)
}

// DefaultManifoldRegConfig returns a tractable landmark configuration for
// the given embedding method.
func DefaultManifoldRegConfig(m ManifoldMethod) ManifoldRegConfig {
	return baseline.DefaultManifoldRegConfig(m)
}

// TrainManifoldRegression fits the Isomap/LLE deep-regression baseline.
func TrainManifoldRegression(ds *WiFiDataset, cfg ManifoldRegConfig) (*ManifoldRegressor, error) {
	return baseline.TrainManifoldRegression(ds, cfg)
}

// TrainIMURegression fits the IMU Deep Regression baseline.
func TrainIMURegression(ds *IMUPathDataset, cfg RegConfig) *IMURegressor {
	return baseline.TrainIMURegression(ds, cfg)
}

// Energy model (§IV-C / §V-D).

// DeviceProfile models an edge inference device.
type DeviceProfile = energy.DeviceProfile

// EnergyEstimate is one inference cost prediction.
type EnergyEstimate = energy.Estimate

// PathBudget is the §V-D energy accounting for a tracked path.
type PathBudget = energy.PathBudget

// JetsonTX2 returns the TX2-class device profile calibrated against the
// paper's measurements.
func JetsonTX2() DeviceProfile { return energy.JetsonTX2() }

// Paper-quoted energy constants (§V-D, citing [8]).
const (
	GPSEnergyPerFix = energy.GPSEnergyPerFix
	IMUSensorPower  = energy.IMUSensorPower
)
