package noble_test

import (
	"fmt"

	"noble"
)

// ExampleTrainWiFi shows the minimal fingerprint-localization pipeline:
// synthesize a survey, train NObLe, and verify the structural guarantee —
// every decoded position lies on the map.
func ExampleTrainWiFi() {
	cfg := noble.SmallIPINConfig()
	cfg.NumWAPs = 15
	cfg.RefSpacing = 6
	ds := noble.SynthIPIN(cfg)

	trainCfg := noble.DefaultWiFiConfig()
	trainCfg.Hidden = []int{24, 24}
	trainCfg.Epochs = 8
	model := noble.TrainWiFi(ds, trainCfg)

	pred := model.Predict(ds.Test[0].Features)
	fmt.Println("prediction on map:", ds.Plan.Accessible(pred.Pos))
	fmt.Println("classes cover dead space:", model.Classes() > 0)
	// Output:
	// prediction on map: true
	// classes cover dead space: true
}

// ExampleNewGrid demonstrates the paper's space quantization: cells
// without training data are discarded, so inaccessible space cannot be
// predicted.
func ExampleNewGrid() {
	// Two rooms with a void between them.
	points := []noble.Point{
		{X: 0.2, Y: 0.2}, {X: 0.8, Y: 0.6}, // room A
		{X: 10.1, Y: 0.3}, // room B
	}
	g := noble.NewGrid(1.0, points)
	fmt.Println("classes:", g.Classes())
	_, voidPopulated := g.ClassOf(noble.Point{X: 5, Y: 0.5})
	fmt.Println("void between rooms is a class:", voidPopulated)
	// Output:
	// classes: 2
	// void between rooms is a class: false
}

// ExampleDeviceProfile_TrackPath reproduces the §V-D energy comparison
// against GPS.
func ExampleDeviceProfile_TrackPath() {
	budget := noble.JetsonTX2().TrackPath(4_000_000, 8)
	fmt.Printf("sensors: %.4f J\n", budget.Sensor)
	fmt.Printf("GPS is >20x more expensive: %v\n", budget.Ratio > 20)
	// Output:
	// sensors: 0.1356 J
	// GPS is >20x more expensive: true
}
