// Command noble-bench runs the paper-reproduction experiment suite and
// prints paper-vs-measured tables for every table and figure in the
// evaluation (see DESIGN.md §3 for the index).
//
// Usage:
//
//	noble-bench [-preset small|full] [-only T1,T3,F4] [-list] [-o file]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"noble/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-bench: ")
	presetFlag := flag.String("preset", "small", "experiment scale: small or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	listFlag := flag.Bool("list", false, "list experiments and exit")
	outFlag := flag.String("o", "", "write reports to this file instead of stdout")
	flag.Parse()

	if *listFlag {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	var preset experiments.Preset
	switch *presetFlag {
	case "small":
		preset = experiments.Small
	case "full":
		preset = experiments.Full
	default:
		log.Fatalf("unknown preset %q (want small or full)", *presetFlag)
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	// The output file is closed on every exit path with the close error
	// checked: a bare `defer f.Close()` would silently drop write-back
	// errors (a full disk would go unnoticed) and would never run at all
	// past log.Fatalf, which exits without unwinding deferred calls.
	out := os.Stdout
	var outFile *os.File
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			log.Fatalf("creating %s: %v", *outFlag, err)
		}
		out = f
		outFile = f
	}

	runErr := runExperiments(out, preset, want, *onlyFlag)
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			log.Fatalf("closing %s: %v", *outFlag, err)
		}
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}

// runExperiments executes the selected experiments, writing each report to
// out as it completes.
func runExperiments(out io.Writer, preset experiments.Preset, want map[string]bool, onlyFlag string) error {
	ran := 0
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		report := e.Run(preset)
		if err := report.Fprint(out); err != nil {
			return fmt.Errorf("writing report %s: %w", e.ID, err)
		}
		if _, err := fmt.Fprintf(out, "[%s completed in %v at preset %s]\n\n",
			e.ID, time.Since(start).Round(time.Millisecond), preset); err != nil {
			return fmt.Errorf("writing report %s: %w", e.ID, err)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -only=%q", onlyFlag)
	}
	return nil
}
