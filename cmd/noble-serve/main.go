// Command noble-serve is the online inference server: it loads named
// model bundles from a directory (hot-reloading changed bundles
// atomically), serves localization and tracking over an HTTP JSON API,
// and coalesces concurrent localize requests into batched forward passes.
//
// Usage:
//
//	noble-serve -models ./models [-addr :8080] [-batch-window 2ms]
//	            [-batch-max 32] [-reload 2s] [-session-ttl 10m]
//	            [-session-sweep 0] [-demo] [-demo-tiny]
//	            [-state-dir ./state] [-fsync interval] [-sync-interval 100ms]
//	            [-compact-every 1m]
//
// With -state-dir, tracking sessions are durable: every session event
// (create, committed IMU segments, WiFi re-anchor, close/evict) is
// appended to a CRC-framed write-ahead log under the directory, and a
// restart restores all recorded sessions — bit-identical tracker state —
// before the listener opens. -fsync picks the durability/latency
// tradeoff (never, interval, always); -compact-every bounds recovery
// cost by periodically folding the log into per-session snapshots. A
// recorded directory replays offline with noble-replay.
//
// Endpoints:
//
//	POST   /v1/localize      {"model":"m","fingerprints":[[...]]}
//	POST   /v1/track         {"model":"m","paths":[{"start":{"x":0,"y":0},"features":[...]}]}
//	POST   /v1/sessions/{id}/segments
//	                         stateful tracking: append IMU segments to a
//	                         per-device session, optionally carrying a WiFi
//	                         fingerprint that re-anchors the trajectory
//	GET    /v1/sessions/{id} session state (steps, position, travel)
//	DELETE /v1/sessions/{id} end a session
//	GET    /v1/models        registered models and their shapes
//	GET    /healthz          liveness
//	GET    /metrics          Prometheus text: request counts, latency
//	                         quantiles, micro-batch occupancy per kind,
//	                         session gauges/counters
//
// With -demo, a small Wi-Fi localizer and IMU tracker are trained at
// startup (a few seconds) and written into -models as regular bundles, so
// a fresh checkout can serve traffic with one command.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"noble/internal/serve"
	"noble/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-serve: ")
	addr := flag.String("addr", ":8080", "listen address")
	modelsDir := flag.String("models", "models", "bundle directory (manifest.json + weights.gob per model)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond,
		"micro-batch coalescing window (0 disables batching)")
	batchMax := flag.Int("batch-max", 32, "max fingerprints per coalesced forward pass (best ≈ expected concurrent cohort)")
	reload := flag.Duration("reload", 2*time.Second, "bundle directory poll interval (0 disables hot reload)")
	sessionTTL := flag.Duration("session-ttl", 10*time.Minute, "evict tracking sessions idle longer than this (0 disables eviction)")
	sessionSweep := flag.Duration("session-sweep", 0, "session eviction sweep interval (0 = ttl/4)")
	demo := flag.Bool("demo", false, "train small demo models into -models before serving")
	demoTiny := flag.Bool("demo-tiny", false, "train miniature demo models (seconds, not minutes) — for smoke tests and CI, not benchmarks")
	stateDir := flag.String("state-dir", "", "durable session journal directory (empty disables persistence)")
	fsync := flag.String("fsync", "interval", "journal durability: never (buffered only), interval (periodic fsync), always (group-committed fsync per request)")
	syncInterval := flag.Duration("sync-interval", 100*time.Millisecond, "journal flush+fsync cadence under -fsync=interval")
	compactEvery := flag.Duration("compact-every", time.Minute, "journal snapshot/compaction cadence (0 disables compaction)")
	flag.Parse()

	if err := os.MkdirAll(*modelsDir, 0o755); err != nil {
		log.Fatalf("creating models dir: %v", err)
	}
	if *demo || *demoTiny {
		if err := serve.TrainDemoBundles(*modelsDir, *demoTiny, log.Printf); err != nil {
			log.Fatalf("demo bundles: %v", err)
		}
	}

	reg := serve.NewRegistry(*modelsDir, log.Printf)
	loaded, _, err := reg.Reload()
	if err != nil {
		log.Fatalf("loading bundles from %s: %v", *modelsDir, err)
	}
	log.Printf("loaded %d model(s) from %s", loaded, *modelsDir)
	for _, info := range reg.List() {
		log.Printf("  %-16s kind=%s classes=%d flops=%d", info.Name, info.Kind, info.Classes, info.FLOPs)
	}

	// Durable session journal: open and recover BEFORE the engine serves
	// anything, so restored sessions are in place when the listener opens.
	var (
		journal *store.Journal
		rec     *store.Recovery
	)
	if *stateDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("%v", err)
		}
		journal, err = store.Open(store.Config{
			Dir:          *stateDir,
			Fsync:        policy,
			SyncInterval: *syncInterval,
			Logf:         log.Printf,
		})
		if err != nil {
			log.Fatalf("opening session journal: %v", err)
		}
		if rec, err = journal.Recover(); err != nil {
			log.Fatalf("recovering session journal: %v", err)
		}
	}

	engine := serve.NewEngine(serve.Config{
		Registry:    reg,
		BatchWindow: *batchWindow,
		MaxBatch:    *batchMax,
		SessionTTL:  *sessionTTL,
		Journal:     journal,
	})
	if journal != nil {
		sum := engine.RestoreSessions(rec)
		log.Printf("session journal %s: fsync=%s, restored %d session(s) (%d skipped, %d closed in record, %d torn record(s) dropped)",
			*stateDir, *fsync, sum.Restored, sum.Skipped, sum.Closed, sum.Torn)
	}
	srv := serve.NewServer(engine)
	if srv.Batching() {
		log.Printf("micro-batching on: window=%v max=%d", *batchWindow, *batchMax)
	} else {
		log.Printf("micro-batching off")
	}
	if *sessionTTL > 0 {
		log.Printf("tracking sessions: ttl=%v", *sessionTTL)
	} else {
		log.Printf("tracking sessions: no eviction")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go reg.Watch(ctx, *reload)
	go srv.Sessions().Run(ctx, *sessionSweep)
	if journal != nil {
		go journal.Run(ctx)
		go engine.RunJournalCompaction(ctx, *compactEvery)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	drained := make(chan struct{})
	go func() {
		<-ctx.Done()
		// Graceful drain: new inference requests get 503 with the
		// structured server_draining envelope (so load balancers and the
		// client SDK fail over immediately) while in-flight requests —
		// including batched passes already queued — run to completion
		// under Shutdown.
		srv.StartDraining()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
		close(drained)
	}()

	// Listen before announcing, and announce the RESOLVED address: with
	// -addr 127.0.0.1:0 the kernel picks a free port, and scripts (the CI
	// crash-recovery test, the perf rig) read it from this log line
	// instead of hard-coding a port that may be taken.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listening on %s: %v", *addr, err)
	}
	log.Printf("listening on %s", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serving: %v", err)
	}
	if journal != nil {
		// ListenAndServe returns the moment Shutdown closes the listener,
		// while in-flight handlers are still appending — wait for the
		// drain to finish before closing the journal, or their final
		// events would race the close and be lost.
		<-drained
		if err := journal.Close(); err != nil {
			log.Printf("closing session journal: %v", err)
		}
	}
	log.Printf("shut down")
}
