// Command noble-serve is the online inference server: it loads named
// model bundles from a directory (hot-reloading changed bundles
// atomically), serves localization and tracking over an HTTP JSON API,
// and coalesces concurrent localize requests into batched forward passes.
//
// Usage:
//
//	noble-serve -models ./models [-addr :8080] [-batch-window 2ms]
//	            [-batch-max 32] [-reload 2s] [-session-ttl 10m]
//	            [-session-sweep 0] [-demo] [-demo-tiny]
//	            [-state-dir ./state] [-fsync interval] [-sync-interval 100ms]
//	            [-compact-every 1m] [-trace] [-trace-sample 1.0]
//	            [-trace-ring 256] [-slow-ms 250] [-admin-addr addr]
//	            [-mirror-rate 0.1] [-lifecycle-tick 5s]
//	            [-retrain-corpus dir] [-retrain-every 0] [-retrain-tick 30s]
//	            [-retrain-max-error-delta 0] [-retrain-min-samples 50]
//	            [-retrain-retention 168h] [-retrain-min-fixes 8]
//	noble-serve -admin-addr host:port -promote model
//	noble-serve -admin-addr host:port -rollback model
//	noble-serve -admin-addr host:port -retrain model
//
// With -state-dir, tracking sessions are durable: every session event
// (create, committed IMU segments, WiFi re-anchor, close/evict) is
// appended to a CRC-framed write-ahead log under the directory, and a
// restart restores all recorded sessions — bit-identical tracker state —
// before the listener opens. -fsync picks the durability/latency
// tradeoff (never, interval, always); -compact-every bounds recovery
// cost by periodically folding the log into per-session snapshots. A
// recorded directory replays offline with noble-replay.
//
// Every request is traced end to end (decode, batch-queue wait, the
// coalesced forward pass, session lock, journal append/fsync, encode);
// per-stage latency histograms land on /metrics and complete timelines
// on /debug/traces, tail-sampled to keep the slowest and errored
// requests. -trace-sample thins the recent-trace ring under load
// (histograms and the slow/errored sets still see every request);
// -slow-ms sets the slow-request threshold for retention and the
// rate-limited slow-request log line; -trace=false turns the tracer
// off entirely. -admin-addr opens a second listener with the full
// debug plane (/debug/pprof, /debug/traces, /debug/runtime,
// /debug/lifecycle, /metrics, and the lifecycle admin endpoints)
// kept off the serving port — bind it to loopback.
//
// New bundle generations do not swap straight into serving: unless a
// bundle's lifecycle.json says otherwise, a republish lands the new
// generation in SHADOW, where a sampled fraction of live traffic
// (-mirror-rate) is mirrored through it off the request path and every
// WiFi re-anchor scores its prediction against the fix. The promotion
// controller (-lifecycle-tick) advances shadow → canary → active when
// the bundle's policy window is met, and automatically rolls back a
// canary whose live error or pass latency regresses past policy.
// Lifecycle transitions are journaled to -state-dir, so stages survive
// a crash. Manual overrides run as an admin client against a live
// server: noble-serve -admin-addr ... -promote model (or -rollback).
//
// With -state-dir the retraining loop (DESIGN.md §11) is also armed:
// the session WAL's re-anchor fixes are harvestable into a training
// corpus (-retrain-corpus, default <state-dir>/retrain), POST
// /admin/retrain/{model} kicks a harvest+retrain whose republished
// bundle enters shadow like any other, and /debug/retrain +
// noble_retrain_* metrics expose the loop's state. Setting
// -retrain-every and/or -retrain-max-error-delta starts the automatic
// trigger: retrain on a wall-clock schedule, or when a model's rolling
// re-anchor error drifts past its promotion-time baseline by the
// configured delta (evaluated every -retrain-tick).
//
// Endpoints:
//
//	POST   /v1/localize      {"model":"m","fingerprints":[[...]]}
//	POST   /v1/track         {"model":"m","paths":[{"start":{"x":0,"y":0},"features":[...]}]}
//	POST   /v1/sessions/{id}/segments
//	                         stateful tracking: append IMU segments to a
//	                         per-device session, optionally carrying a WiFi
//	                         fingerprint that re-anchors the trajectory
//	GET    /v1/sessions/{id} session state (steps, position, travel)
//	DELETE /v1/sessions/{id} end a session
//	GET    /v1/models        registered models and their shapes
//	GET    /healthz          liveness
//	GET    /metrics          Prometheus text: request counts, latency
//	                         quantiles, micro-batch occupancy per kind,
//	                         session gauges/counters, per-stage trace
//	                         histograms, runtime/GC gauges
//	GET    /debug/traces     retained request traces (JSON)
//	GET    /debug/runtime    goroutine/heap/GC snapshot (JSON)
//	GET    /debug/lifecycle  deployment pipeline: every live generation's
//	                         stage, policy, and live evaluation evidence
//	GET    /debug/retrain    retraining loop: corpus size, trigger state,
//	                         last harvest and last retrain run
//
// With -demo, a small Wi-Fi localizer and IMU tracker are trained at
// startup (a few seconds) and written into -models as regular bundles, so
// a fresh checkout can serve traffic with one command.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"noble/internal/obs"
	"noble/internal/retrain"
	"noble/internal/serve"
	"noble/internal/serve/lifecycle"
	"noble/internal/store"
)

// lifecycleOverride POSTs a manual promote/rollback to a running
// server's admin plane and reports the server's verdict.
func lifecycleOverride(adminAddr, model, verb string) error {
	url := fmt.Sprintf("http://%s/admin/lifecycle/%s/%s", adminAddr, model, verb)
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server said %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// retrainOverride POSTs a manual retrain kick to a running server's
// admin plane. The server answers 202 and runs the harvest+retrain in
// the background; watch /debug/retrain for the outcome.
func retrainOverride(adminAddr, model string) error {
	url := fmt.Sprintf("http://%s/admin/retrain/%s", adminAddr, model)
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("server said %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelsDir := flag.String("models", "models", "bundle directory (manifest.json + weights.gob per model)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond,
		"micro-batch coalescing window (0 disables batching)")
	batchMax := flag.Int("batch-max", 32, "max fingerprints per coalesced forward pass (best ≈ expected concurrent cohort)")
	reload := flag.Duration("reload", 2*time.Second, "bundle directory poll interval (0 disables hot reload)")
	sessionTTL := flag.Duration("session-ttl", 10*time.Minute, "evict tracking sessions idle longer than this (0 disables eviction)")
	sessionSweep := flag.Duration("session-sweep", 0, "session eviction sweep interval (0 = ttl/4)")
	demo := flag.Bool("demo", false, "train small demo models into -models before serving")
	demoTiny := flag.Bool("demo-tiny", false, "train miniature demo models (seconds, not minutes) — for smoke tests and CI, not benchmarks")
	checkBundles := flag.Bool("check-bundles", false, "load every bundle (int8 bundles re-run the accuracy gate) and exit: 0 if all load, 1 otherwise")
	stateDir := flag.String("state-dir", "", "durable session journal directory (empty disables persistence)")
	fsync := flag.String("fsync", "interval", "journal durability: never (buffered only), interval (periodic fsync), always (group-committed fsync per request)")
	syncInterval := flag.Duration("sync-interval", 100*time.Millisecond, "journal flush+fsync cadence under -fsync=interval")
	compactEvery := flag.Duration("compact-every", time.Minute, "journal snapshot/compaction cadence (0 disables compaction)")
	trace := flag.Bool("trace", true, "per-request end-to-end tracing (histograms on /metrics, timelines on /debug/traces)")
	traceSample := flag.Float64("trace-sample", 1.0, "fraction of traces admitted to the recent ring (slow/errored retention and histograms always see every request)")
	traceRing := flag.Int("trace-ring", 256, "recent-trace ring capacity on /debug/traces")
	slowMs := flag.Int("slow-ms", 250, "slow-request threshold in milliseconds (tail retention + rate-limited warn log)")
	adminAddr := flag.String("admin-addr", "", "debug-plane listen address (pprof, traces, runtime; empty disables — bind to loopback)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of logfmt text")
	mirrorRate := flag.Float64("mirror-rate", 0.1,
		"fraction of localize/track traffic mirrored through staged (shadow/canary) generations for live evaluation (0 disables sampled mirroring)")
	lifecycleTick := flag.Duration("lifecycle-tick", 5*time.Second,
		"promotion-controller evaluation cadence (0 disables automatic promotion/rollback; manual overrides still work)")
	promote := flag.String("promote", "",
		"admin-client mode: promote the named model's staged generation one stage via -admin-addr, then exit")
	rollback := flag.String("rollback", "",
		"admin-client mode: retire the named model's staged generation via -admin-addr, then exit")
	retrainKick := flag.String("retrain", "",
		"admin-client mode: kick a harvest+retrain of the named model via -admin-addr, then exit")
	retrainCorpus := flag.String("retrain-corpus", "",
		"training corpus directory for harvested re-anchor fixes (default <state-dir>/retrain; needs -state-dir)")
	retrainTick := flag.Duration("retrain-tick", 30*time.Second,
		"retrain trigger evaluation cadence (harvest + drift/schedule check; needs a trigger flag below to do anything)")
	retrainEvery := flag.Duration("retrain-every", 0,
		"retrain each corpus-backed wifi bundle on this wall-clock schedule (0 disables the schedule trigger)")
	retrainMaxErrDelta := flag.Float64("retrain-max-error-delta", 0,
		"retrain when a model's rolling re-anchor error exceeds its baseline by this many meters (0 disables the drift trigger)")
	retrainMinSamples := flag.Int64("retrain-min-samples", 50,
		"re-anchor scores needed past the baseline before the drift trigger may fire")
	retrainRetention := flag.Duration("retrain-retention", 168*time.Hour,
		"drop harvested corpus fixes older than this (0 keeps everything)")
	retrainMaxFixes := flag.Int("retrain-max-fixes", 100000,
		"cap each model's corpus at the newest N fixes (0 = unbounded)")
	retrainMinFixes := flag.Int("retrain-min-fixes", 8,
		"refuse to retrain a model with fewer corpus fixes than this")
	flag.Parse()

	// Structured logging: one slog logger feeds the server's own lines,
	// the registry and journal (via the printf adapter), and the tracer's
	// slow-request warnings.
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	logf := func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// Manual lifecycle/retrain overrides run as an admin-plane HTTP
	// client against an already-running server, then exit.
	if *promote != "" || *rollback != "" {
		if *adminAddr == "" {
			fatal("lifecycle override needs -admin-addr pointing at the running server's debug plane")
		}
		model, verb := *promote, "promote"
		if *rollback != "" {
			model, verb = *rollback, "rollback"
		}
		if err := lifecycleOverride(*adminAddr, model, verb); err != nil {
			fatal("lifecycle override", "model", model, "action", verb, "err", err)
		}
		logger.Info("lifecycle override applied", "model", model, "action", verb)
		return
	}
	if *retrainKick != "" {
		if *adminAddr == "" {
			fatal("retrain kick needs -admin-addr pointing at the running server's debug plane")
		}
		if err := retrainOverride(*adminAddr, *retrainKick); err != nil {
			fatal("retrain kick", "model", *retrainKick, "err", err)
		}
		logger.Info("retrain kicked", "model", *retrainKick, "next", "watch /debug/retrain")
		return
	}

	if err := os.MkdirAll(*modelsDir, 0o755); err != nil {
		fatal("creating models dir", "dir", *modelsDir, "err", err)
	}
	if *demo || *demoTiny {
		scale := serve.DemoFull
		if *demoTiny {
			scale = serve.DemoTiny
		}
		if err := serve.TrainDemoBundles(*modelsDir, scale, logf); err != nil {
			fatal("training demo bundles", "err", err)
		}
	}

	reg := serve.NewRegistry(*modelsDir, logf)
	if *checkBundles {
		// Validation mode for CI and deploy pipelines: every bundle in
		// the directory must load (int8 bundles must also re-pass the
		// accuracy gate inside LoadBundle). Exit status is the verdict.
		loaded, _, err := reg.Reload()
		if err != nil {
			fatal("loading bundles", "dir", *modelsDir, "err", err)
		}
		if failed := reg.FailedBundles(); len(failed) > 0 {
			fatal("bundle check failed", "failed", fmt.Sprintf("%v", failed))
		}
		logger.Info("bundle check passed", "bundles", loaded)
		return
	}

	var tracer *obs.Tracer
	if *trace {
		tracer = obs.NewTracer(obs.Options{
			RingSize:      *traceRing,
			SampleRate:    *traceSample,
			SlowThreshold: time.Duration(*slowMs) * time.Millisecond,
			Logger:        logger,
		})
	}

	// Durable session journal: open and recover BEFORE the engine serves
	// anything, so restored sessions are in place when the listener opens.
	var (
		journal *store.Journal
		rec     *store.Recovery
	)
	if *stateDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsync)
		if err != nil {
			fatal("parsing -fsync", "err", err)
		}
		journal, err = store.Open(store.Config{
			Dir:          *stateDir,
			Fsync:        policy,
			SyncInterval: *syncInterval,
			Logf:         logf,
		})
		if err != nil {
			fatal("opening session journal", "err", err)
		}
		if rec, err = journal.Recover(); err != nil {
			fatal("recovering session journal", "err", err)
		}
		// Recovered lifecycle events drive where Reload places each
		// bundle: a generation that was mid-canary when the process died
		// resumes as canary, a rolled-back one stays retired.
		reg.SetRecoveredStages(serve.RecoveredStages(rec))
	}

	engine := serve.NewEngine(serve.Config{
		Registry:    reg,
		BatchWindow: *batchWindow,
		MaxBatch:    *batchMax,
		SessionTTL:  *sessionTTL,
		Journal:     journal,
		Tracer:      tracer,
		NoTrace:     !*trace,
		MirrorRate:  *mirrorRate,
	})

	// First bundle load AFTER journal recovery (stages resume where they
	// were) and AFTER engine construction (the engine's transition hook is
	// installed, so even bootstrap activations are journaled).
	loaded, _, err := reg.Reload()
	if err != nil {
		fatal("loading bundles", "dir", *modelsDir, "err", err)
	}
	logger.Info("models loaded", "count", loaded, "dir", *modelsDir)
	for _, info := range reg.ListLifecycle() {
		logger.Info("model", "name", info.Name, "kind", info.Kind, "precision", info.Precision,
			"classes", info.Classes, "flops", info.FLOPs, "stage", info.Stage)
	}

	if journal != nil {
		sum := engine.RestoreSessions(rec)
		logger.Info("session journal recovered", "dir", *stateDir, "fsync", *fsync,
			"restored", sum.Restored, "skipped", sum.Skipped, "closed", sum.Closed, "torn", sum.Torn)
	}
	srv := serve.NewServer(engine)

	// Retraining manager: armed whenever sessions are durable (the WAL is
	// the evidence source). Without trigger flags it is manual-only —
	// POST /admin/retrain/{model} or the noble-retrain CLI drive it; with
	// -retrain-every / -retrain-max-error-delta the trigger loop below
	// harvests and retrains on its own. Samples come straight from the
	// registry (no scrape hop), and Reload stages a fresh publish without
	// waiting for the directory watcher.
	var retrainMgr *retrain.Manager
	if *stateDir != "" {
		corpusDir := *retrainCorpus
		if corpusDir == "" {
			corpusDir = filepath.Join(*stateDir, "retrain")
		}
		retrainMgr = retrain.NewManager(retrain.ManagerConfig{
			StateDir:    *stateDir,
			ModelsDir:   *modelsDir,
			CorpusDir:   corpusDir,
			Retention:   *retrainRetention,
			MaxPerModel: *retrainMaxFixes,
			MinFixes:    *retrainMinFixes,
			Trigger: retrain.TriggerPolicy{
				MaxErrorDeltaM: *retrainMaxErrDelta,
				MinSamples:     *retrainMinSamples,
				Every:          *retrainEvery,
			},
			Samples: func() []retrain.Sample {
				var out []retrain.Sample
				for _, dep := range reg.Deployments() {
					if dep.Active == nil {
						continue
					}
					out = append(out, retrain.Sample{
						Model:      dep.Name,
						Generation: dep.Active.Generation,
						Scores:     dep.Active.Stats.Scores,
						ErrorSumM:  dep.Active.Stats.ErrorSumM,
					})
				}
				return out
			},
			Reload: func() error { _, _, err := reg.Reload(); return err },
			Logf:   logf,
		})
		srv.SetRetrain(retrainMgr)
	}

	if srv.Batching() {
		logger.Info("micro-batching on", "window", *batchWindow, "max", *batchMax)
	} else {
		logger.Info("micro-batching off")
	}
	if *sessionTTL > 0 {
		logger.Info("session eviction on", "ttl", *sessionTTL)
	} else {
		logger.Info("session eviction off")
	}
	if tracer != nil {
		logger.Info("tracing on", "sample", tracer.SampleRate(), "ring", *traceRing, "slow_ms", *slowMs)
	} else {
		logger.Info("tracing off")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go reg.Watch(ctx, *reload)
	if *lifecycleTick > 0 {
		ctl := &lifecycle.Controller{Registry: reg, Interval: *lifecycleTick, Logf: logf}
		go ctl.Run(ctx)
		logger.Info("promotion controller on", "tick", *lifecycleTick, "mirror_rate", *mirrorRate)
	} else {
		logger.Info("promotion controller off")
	}
	if retrainMgr != nil && (*retrainEvery > 0 || *retrainMaxErrDelta > 0) {
		go retrainMgr.Run(ctx, *retrainTick)
		logger.Info("retrain trigger on", "tick", *retrainTick,
			"every", *retrainEvery, "max_error_delta", *retrainMaxErrDelta, "min_samples", *retrainMinSamples)
	} else if retrainMgr != nil {
		logger.Info("retrain manual-only", "hint", "POST /admin/retrain/{model} or noble-retrain")
	}
	go srv.Sessions().Run(ctx, *sessionSweep)
	if journal != nil {
		go journal.Run(ctx)
		go engine.RunJournalCompaction(ctx, *compactEvery)
	}

	// Opt-in debug plane on its own listener: the full pprof family plus
	// traces, runtime, and metrics, kept off the serving port so fleet
	// traffic can never reach a profile endpoint.
	var adminSrv *http.Server
	if *adminAddr != "" {
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal("listening on admin addr", "addr", *adminAddr, "err", err)
		}
		adminSrv = &http.Server{Handler: srv.DebugHandler()}
		logger.Info("debug plane listening", "addr", adminLn.Addr().String())
		go func() {
			if err := adminSrv.Serve(adminLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug plane serving", "err", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	drained := make(chan struct{})
	go func() {
		<-ctx.Done()
		// Graceful drain: new inference requests get 503 with the
		// structured server_draining envelope (so load balancers and the
		// client SDK fail over immediately) while in-flight requests —
		// including batched passes already queued — run to completion
		// under Shutdown.
		srv.StartDraining()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
		if adminSrv != nil {
			adminSrv.Shutdown(shutdownCtx)
		}
		close(drained)
	}()

	// Listen before announcing, and announce the RESOLVED address: with
	// -addr 127.0.0.1:0 the kernel picks a free port, and scripts (the CI
	// crash-recovery test, the perf rig) read it from this log line
	// instead of hard-coding a port that may be taken.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listening", "addr", *addr, "err", err)
	}
	logger.Info("listening", "addr", ln.Addr().String())
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serving", "err", err)
	}
	if journal != nil {
		// Serve returns the moment Shutdown closes the listener, while
		// in-flight handlers are still appending — wait for the drain to
		// finish before closing the journal, or their final events would
		// race the close and be lost.
		<-drained
		if err := journal.Close(); err != nil {
			logger.Error("closing session journal", "err", err)
		}
	}
	logger.Info("shut down")
}
