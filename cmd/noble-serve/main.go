// Command noble-serve is the online inference server: it loads named
// model bundles from a directory (hot-reloading changed bundles
// atomically), serves localization and tracking over an HTTP JSON API,
// and coalesces concurrent localize requests into batched forward passes.
//
// Usage:
//
//	noble-serve -models ./models [-addr :8080] [-batch-window 2ms]
//	            [-batch-max 32] [-reload 2s] [-session-ttl 10m]
//	            [-session-sweep 0] [-demo]
//
// Endpoints:
//
//	POST   /v1/localize      {"model":"m","fingerprints":[[...]]}
//	POST   /v1/track         {"model":"m","paths":[{"start":{"x":0,"y":0},"features":[...]}]}
//	POST   /v1/sessions/{id}/segments
//	                         stateful tracking: append IMU segments to a
//	                         per-device session, optionally carrying a WiFi
//	                         fingerprint that re-anchors the trajectory
//	GET    /v1/sessions/{id} session state (steps, position, travel)
//	DELETE /v1/sessions/{id} end a session
//	GET    /v1/models        registered models and their shapes
//	GET    /healthz          liveness
//	GET    /metrics          Prometheus text: request counts, latency
//	                         quantiles, micro-batch occupancy per kind,
//	                         session gauges/counters
//
// With -demo, a small Wi-Fi localizer and IMU tracker are trained at
// startup (a few seconds) and written into -models as regular bundles, so
// a fresh checkout can serve traffic with one command.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/imu"
	"noble/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-serve: ")
	addr := flag.String("addr", ":8080", "listen address")
	modelsDir := flag.String("models", "models", "bundle directory (manifest.json + weights.gob per model)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond,
		"micro-batch coalescing window (0 disables batching)")
	batchMax := flag.Int("batch-max", 32, "max fingerprints per coalesced forward pass (best ≈ expected concurrent cohort)")
	reload := flag.Duration("reload", 2*time.Second, "bundle directory poll interval (0 disables hot reload)")
	sessionTTL := flag.Duration("session-ttl", 10*time.Minute, "evict tracking sessions idle longer than this (0 disables eviction)")
	sessionSweep := flag.Duration("session-sweep", 0, "session eviction sweep interval (0 = ttl/4)")
	demo := flag.Bool("demo", false, "train small demo models into -models before serving")
	flag.Parse()

	if err := os.MkdirAll(*modelsDir, 0o755); err != nil {
		log.Fatalf("creating models dir: %v", err)
	}
	if *demo {
		if err := writeDemoBundles(*modelsDir); err != nil {
			log.Fatalf("demo bundles: %v", err)
		}
	}

	reg := serve.NewRegistry(*modelsDir, log.Printf)
	loaded, _, err := reg.Reload()
	if err != nil {
		log.Fatalf("loading bundles from %s: %v", *modelsDir, err)
	}
	log.Printf("loaded %d model(s) from %s", loaded, *modelsDir)
	for _, info := range reg.List() {
		log.Printf("  %-16s kind=%s classes=%d flops=%d", info.Name, info.Kind, info.Classes, info.FLOPs)
	}

	srv := serve.New(serve.Config{
		Registry:    reg,
		BatchWindow: *batchWindow,
		MaxBatch:    *batchMax,
		SessionTTL:  *sessionTTL,
	})
	if srv.Batching() {
		log.Printf("micro-batching on: window=%v max=%d", *batchWindow, *batchMax)
	} else {
		log.Printf("micro-batching off")
	}
	if *sessionTTL > 0 {
		log.Printf("tracking sessions: ttl=%v", *sessionTTL)
	} else {
		log.Printf("tracking sessions: no eviction")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go reg.Watch(ctx, *reload)
	go srv.Sessions().Run(ctx, *sessionSweep)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		// Graceful drain: new inference requests get 503 with the
		// structured server_draining envelope (so load balancers and the
		// client SDK fail over immediately) while in-flight requests —
		// including batched passes already queued — run to completion
		// under Shutdown.
		srv.StartDraining()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serving: %v", err)
	}
	log.Printf("shut down")
}

// writeDemoBundles trains a small Wi-Fi localizer and IMU tracker and
// publishes them as bundles, skipping any that already exist.
func writeDemoBundles(dir string) error {
	if _, err := os.Stat(filepath.Join(dir, "demo-wifi", "manifest.json")); err != nil {
		// Production-scale survey: a 3.5 m survey grid across the
		// synthetic campus yields ~1650 neighborhood classes — the same
		// order as the real UJIIndoorLoc deployment (933 reference
		// locations, and denser in XY once its four floors project onto
		// one fine grid). The class-head width is the serving hot path,
		// so the demo model exercises the batching engine at deployment
		// scale. Expect a few minutes of one-time training.
		log.Printf("training demo-wifi (synthetic UJI survey at paper scale, takes a few minutes)...")
		dsCfg := dataset.DefaultUJIConfig()
		dsCfg.RefSpacing = 3.5
		dsCfg.SamplesPerRef = 4
		cfg := core.DefaultWiFiConfig()
		cfg.Epochs = 8
		ds := dataset.SynthUJI(dsCfg)
		log.Printf("demo-wifi: %d train samples, %d WAPs", len(ds.Train), ds.NumWAPs)
		start := time.Now()
		model := core.TrainWiFi(ds, cfg)
		log.Printf("demo-wifi: %d classes, trained in %v", model.Classes(), time.Since(start).Round(time.Millisecond))
		err := serve.WriteBundle(dir, "demo-wifi", serve.Manifest{
			Kind: serve.KindWiFi,
			WiFi: &serve.WiFiBundle{Plan: "uji", Dataset: dsCfg, Config: cfg},
		}, func(f *os.File) error { return model.Save(f) })
		if err != nil {
			return err
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "demo-imu", "manifest.json")); err != nil {
		log.Printf("training demo-imu (small synthetic campus walks)...")
		sensors := imu.DefaultConfig()
		sensors.ReadingsPerSegment = 96
		sensors.TotalSegments = 160
		paths := imu.PathConfig{
			NumPaths: 1200, MaxLen: 12, Frames: 6,
			TrainFrac: 4389.0 / 6857.0, ValFrac: 1096.0 / 6857.0, Seed: 7,
		}
		bundle := &serve.IMUBundle{Spacing: 6, Sensors: sensors, Seed: 2021, Paths: paths}
		cfg := core.DefaultIMUConfig()
		cfg.Hidden = []int{64, 64}
		cfg.Epochs = 20
		cfg.Tau = 1.0
		bundle.Config = cfg
		start := time.Now()
		model := core.TrainIMU(bundle.BuildIMUDataset(), cfg)
		log.Printf("demo-imu: %d classes, trained in %v", model.Classes(), time.Since(start).Round(time.Millisecond))
		err := serve.WriteBundle(dir, "demo-imu", serve.Manifest{Kind: serve.KindIMU, IMU: bundle},
			func(f *os.File) error { return model.Save(f) })
		if err != nil {
			return err
		}
	}
	return nil
}
