// Command noble-vet runs the repo's custom invariant analyzers (see
// internal/vetrules and docs/LINT.md) over Go packages.
//
// Usage:
//
//	noble-vet [-list] [packages or fixture dirs]
//
// Arguments are normally package patterns handed to `go list` (the CI
// gate runs `noble-vet ./...`). An argument that names a directory
// under a testdata/src tree is loaded as an analysistest fixture
// package instead — that is how CI asserts the historical-bug
// regression fixtures still trip their analyzers.
//
// Exit status: 0 for a clean tree, 1 when findings were reported, 2
// when analysis itself failed (load or type-check error).
package main

import (
	"flag"
	"fmt"
	"os"

	"noble/internal/vetrules"
	"noble/internal/vetrules/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: noble-vet [-list] [packages or fixture dirs]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := vetrules.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	var patterns []string
	var pkgs []*analysis.Package
	for _, arg := range args {
		if srcRoot, pkgPath, ok := analysis.SplitFixtureDir(arg); ok {
			if st, err := os.Stat(arg); err == nil && st.IsDir() {
				pkg, err := analysis.LoadFixture(srcRoot, pkgPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "noble-vet: loading fixture %s: %v\n", arg, err)
					os.Exit(2)
				}
				pkgs = append(pkgs, pkg)
				continue
			}
		}
		patterns = append(patterns, arg)
	}
	if len(patterns) > 0 {
		loaded, err := analysis.LoadPatterns(patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "noble-vet: %v\n", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, loaded...)
	}

	findings, err := analysis.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "noble-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "noble-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
