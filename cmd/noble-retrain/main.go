// Command noble-retrain closes the model lifecycle loop from outside
// the server: it harvests re-anchor fixes from a noble-serve session
// WAL into a versioned training corpus, retrains the WiFi bundle(s)
// that produced them on seed data + corpus, and republishes into the
// bundle directory — where the serving registry stages the new
// generation in SHADOW and the lifecycle controller promotes or
// discards it on live evidence. See DESIGN.md §11 and
// docs/OPERATIONS.md.
//
// One-shot (harvest, then retrain each target):
//
//	noble-retrain -state-dir state/ -models models/
//	noble-retrain -state-dir state/ -models models/ -harvest-only
//	noble-retrain -state-dir state/ -models models/ -model demo-wifi \
//	    -target active -policy-min-shadow 40 -policy-min-canary 40
//
// Daemon (periodic harvest plus drift/schedule triggering against a
// live server's metrics):
//
//	noble-retrain -state-dir state/ -models models/ -watch \
//	    -metrics-url http://127.0.0.1:8080/metrics \
//	    -max-error-delta 2 -min-samples 50 -every 24h
//
// The WAL scan is read-only, so both modes are safe against the live
// server that owns the journal. Retrained bundles NEVER serve
// directly: publishing is the only write this tool performs against
// the deployment, and promotion stays with the lifecycle controller.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"noble/internal/retrain"
	"noble/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-retrain: ")
	stateDir := flag.String("state-dir", "", "session WAL directory to harvest (required)")
	models := flag.String("models", "", "bundle directory to retrain into (required unless -harvest-only)")
	corpusDir := flag.String("corpus", "", "training corpus directory (default <state-dir>/retrain)")
	modelFlag := flag.String("model", "", "comma-separated wifi bundles to retrain (default: every retrainable bundle with corpus fixes)")
	harvestOnly := flag.Bool("harvest-only", false, "harvest into the corpus and stop")
	minFixes := flag.Int("min-fixes", 1, "refuse to retrain a model with fewer corpus fixes than this")
	retention := flag.Duration("retention", 168*time.Hour, "drop corpus fixes older than this (0 keeps everything)")
	maxFixes := flag.Int("max-fixes", 100000, "cap each model's corpus at the newest N fixes (0 = unbounded)")
	watch := flag.Bool("watch", false, "run as a daemon: harvest every -interval and retrain on the drift/schedule triggers")
	interval := flag.Duration("interval", 30*time.Second, "watch mode: harvest and trigger-evaluation period")
	metricsURL := flag.String("metrics-url", "", "watch mode: a live noble-serve /metrics URL; feeds the drift trigger from the noble_lifecycle_* histograms")
	maxErrDelta := flag.Float64("max-error-delta", 0, "watch mode: retrain when a model's rolling re-anchor error exceeds its promotion-time baseline by this many meters (0 disables)")
	minSamples := flag.Int64("min-samples", 50, "watch mode: re-anchor scores needed past the baseline before the drift trigger may fire")
	every := flag.Duration("every", 0, "watch mode: also retrain on this wall-clock schedule (0 disables)")
	target := flag.String("target", "", "write a lifecycle.json sidecar with this promotion target (shadow, canary, or active; empty keeps the bundle's existing sidecar)")
	polShadow := flag.Int64("policy-min-shadow", 0, "sidecar policy: mirrored samples a shadow needs before canary (0 = registry default)")
	polCanary := flag.Int64("policy-min-canary", 0, "sidecar policy: canary evaluation window, in samples (0 = registry default)")
	polErr := flag.Float64("policy-max-error-delta", 0, "sidecar policy: max live error delta vs active, meters (0 = registry default)")
	polP99 := flag.Float64("policy-max-p99-delta", 0, "sidecar policy: max p99 pass-latency delta, ms (0 = registry default)")
	flag.Parse()

	if *stateDir == "" {
		log.Fatal("-state-dir is required")
	}
	if *models == "" && !*harvestOnly {
		log.Fatal("-models is required (or pass -harvest-only)")
	}
	if *corpusDir == "" {
		*corpusDir = filepath.Join(*stateDir, "retrain")
	}
	var spec *serve.LifecycleSpec
	switch *target {
	case "":
	case "shadow", "canary", "active":
		spec = &serve.LifecycleSpec{
			Target: *target,
			Policy: serve.LifecyclePolicy{
				MinShadowRequests: *polShadow,
				MinCanaryRequests: *polCanary,
				MaxErrorDeltaM:    *polErr,
				MaxP99DeltaMS:     *polP99,
			},
		}
	default:
		log.Fatalf("unknown -target %q (want shadow, canary, or active)", *target)
	}

	policy := retrain.TriggerPolicy{
		MaxErrorDeltaM: *maxErrDelta,
		MinSamples:     *minSamples,
		Every:          *every,
	}
	mgr := retrain.NewManager(retrain.ManagerConfig{
		StateDir:    *stateDir,
		ModelsDir:   *models,
		CorpusDir:   *corpusDir,
		Retention:   *retention,
		MaxPerModel: *maxFixes,
		MinFixes:    *minFixes,
		Trigger:     policy,
		Samples:     sampleSource(*metricsURL, *corpusDir),
		Lifecycle:   spec,
		Logf:        log.Printf,
	})

	if *watch {
		log.Printf("watching %s every %v (trigger: %s)", *stateDir, *interval, policy.Describe())
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		mgr.Run(ctx, *interval)
		return
	}

	// One-shot: harvest, then retrain each target. An empty corpus is a
	// hard failure — it means the WAL holds no fingerprint-carrying
	// fixes (or the wrong -state-dir), and every downstream step would
	// silently train on seed data alone.
	stats, err := mgr.HarvestNow()
	if err != nil {
		log.Fatalf("harvest: %v", err)
	}
	log.Printf("harvest: %d sessions scanned, %d fixes visible, %d new, %d pruned, corpus now %d",
		stats.Sessions, stats.Scanned, stats.Added, stats.Pruned, stats.Total)
	if stats.Total == 0 {
		log.Fatalf("corpus at %s is empty after harvest — no re-anchor fixes in %s", *corpusDir, *stateDir)
	}
	if *harvestOnly {
		return
	}

	targets, err := resolveTargets(*modelFlag, *models, *corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	if len(targets) == 0 {
		log.Fatal("no retrainable wifi bundles with corpus fixes (pass -model to pick explicitly)")
	}
	for _, model := range targets {
		rec, err := mgr.RunOnce(model, "cli")
		if err != nil {
			log.Fatal(err)
		}
		res := rec.Result
		fmt.Printf("retrained %s: %d seed + %d harvested samples, mean %.2f m, published to %s (awaiting promotion from shadow)\n",
			model, res.SeedSamples, res.UsedFixes, res.MeanErrM, res.BundlePath)
	}
}

// sampleSource feeds the drift trigger. With a metrics URL the samples
// come from the live server's noble_lifecycle_* histograms; without
// one (schedule-only watching), each corpus model gets an empty sample
// so the wall-clock trigger still tracks it.
func sampleSource(metricsURL, corpusDir string) func() []retrain.Sample {
	if metricsURL != "" {
		return func() []retrain.Sample {
			samples, err := retrain.ScrapeLifecycle(metricsURL)
			if err != nil {
				log.Printf("scrape %s: %v", metricsURL, err)
				return nil
			}
			return samples
		}
	}
	return func() []retrain.Sample {
		c, err := retrain.OpenCorpus(corpusDir)
		if err != nil {
			return nil
		}
		var out []retrain.Sample
		for _, m := range c.Models() {
			out = append(out, retrain.Sample{Model: m})
		}
		return out
	}
}

// resolveTargets picks the bundles to retrain: the -model list, or
// every corpus model with a retrainable wifi bundle on disk.
func resolveTargets(modelFlag, modelsDir, corpusDir string) ([]string, error) {
	if modelFlag != "" {
		return strings.Split(modelFlag, ","), nil
	}
	c, err := retrain.OpenCorpus(corpusDir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, m := range c.Models() {
		raw, err := os.ReadFile(filepath.Join(modelsDir, m, "manifest.json"))
		if err != nil {
			continue
		}
		var man serve.Manifest
		if err := json.Unmarshal(raw, &man); err != nil {
			continue
		}
		if man.Kind == serve.KindWiFi && man.WiFi != nil {
			out = append(out, m)
		}
	}
	return out, nil
}
