// Command noble-sim generates synthetic survey datasets and writes them as
// UJIIndoorLoc-format CSV files, so the substrates can be inspected or fed
// to external tools.
//
// Usage:
//
//	noble-sim [-dataset uji|ipin] [-size small|full] [-seed N]
//	          [-train train.csv] [-test test.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"noble/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-sim: ")
	datasetFlag := flag.String("dataset", "uji", "dataset to synthesize: uji or ipin")
	sizeFlag := flag.String("size", "small", "dataset size: small or full")
	seedFlag := flag.Int64("seed", 0, "override generation seed (0 = preset default)")
	trainOut := flag.String("train", "train.csv", "training split output path")
	testOut := flag.String("test", "test.csv", "test split output path")
	flag.Parse()

	var cfg dataset.WiFiConfig
	switch {
	case *datasetFlag == "uji" && *sizeFlag == "full":
		cfg = dataset.DefaultUJIConfig()
	case *datasetFlag == "uji" && *sizeFlag == "small":
		cfg = dataset.SmallUJIConfig()
	case *datasetFlag == "ipin" && *sizeFlag == "full":
		cfg = dataset.DefaultIPINConfig()
	case *datasetFlag == "ipin" && *sizeFlag == "small":
		cfg = dataset.SmallIPINConfig()
	default:
		log.Fatalf("unknown dataset/size %q/%q", *datasetFlag, *sizeFlag)
	}
	if *seedFlag != 0 {
		cfg.Seed = *seedFlag
	}

	var ds *dataset.WiFi
	if *datasetFlag == "uji" {
		ds = dataset.SynthUJI(cfg)
	} else {
		ds = dataset.SynthIPIN(cfg)
	}

	write := func(path string, samples []dataset.WiFiSample) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("creating %s: %v", path, err)
		}
		defer f.Close()
		if err := dataset.SaveUJICSV(f, samples); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
	}
	write(*trainOut, append(append([]dataset.WiFiSample{}, ds.Train...), ds.Val...))
	write(*testOut, ds.Test)
	fmt.Printf("wrote %d training samples to %s and %d test samples to %s (%d WAPs)\n",
		len(ds.Train)+len(ds.Val), *trainOut, len(ds.Test), *testOut, ds.NumWAPs)
}
