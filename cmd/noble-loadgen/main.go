// Command noble-loadgen replays synthetic device traffic against a
// running noble-serve and reports throughput and latency, so serving
// performance (and the effect of micro-batching) is measurable and
// trackable across revisions.
//
// Usage:
//
//	noble-loadgen [-url http://localhost:8080] [-mode localize|track]
//	              [-model NAME] [-concurrency 32] [-duration 10s]
//	              [-qps 0] [-seed 1]
//	              [-wifi-model NAME] [-fix-every 16] [-window 2]
//
// In localize mode (the default) each in-flight request carries one
// fingerprint — the paper's workload shape, where every device asks for
// its own position — and -concurrency controls how many devices query at
// once. In track mode each worker is one device with a stateful tracking
// session: it streams one IMU segment per request to
// /v1/sessions/{id}/segments, and every -fix-every steps the request
// also carries a WiFi fingerprint that re-anchors the session through
// the localize path, replaying the paper's hybrid IMU+WiFi tracking at
// fleet scale; the reported latency is then per tracking step. With
// -qps 0 the load is closed-loop (every worker fires as fast as the
// server answers); otherwise arrivals are paced open-loop at the target
// rate. The report includes the server-side micro-batch occupancy for
// the exercised batcher kind scraped from /metrics, so coalescing is
// visible end to end.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	url2 "net/url"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// rawConn is a minimal persistent HTTP/1.1 client over one TCP
// connection. The stock http.Client costs tens of microseconds per
// request in transport bookkeeping — at serving rates that overhead,
// paid on the same cores as the server under test, dominates what we
// are trying to measure. One writer goroutine per connection, request
// bytes prebuilt, response headers scanned just enough to find the
// body length.
type rawConn struct {
	conn net.Conn
	br   *bufio.Reader
	wbuf []byte
	head []byte // "POST <path> HTTP/1.1\r\nHost: ...\r\nContent-Length: "
}

func dialRaw(addr, path string) (*rawConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	head := fmt.Sprintf("POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: ",
		path, addr)
	return &rawConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 16<<10),
		head: []byte(head),
	}, nil
}

// do sends one request body and fully consumes the response, returning
// the HTTP status code.
func (c *rawConn) do(body []byte) (int, error) {
	c.wbuf = c.wbuf[:0]
	c.wbuf = append(c.wbuf, c.head...)
	c.wbuf = strconv.AppendInt(c.wbuf, int64(len(body)), 10)
	c.wbuf = append(c.wbuf, '\r', '\n', '\r', '\n')
	c.wbuf = append(c.wbuf, body...)
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return 0, err
	}
	status := 0
	contentLength := -1
	// ReadSlice avoids a string allocation per header line; responses
	// fit the bufio buffer by construction.
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return 0, err
	}
	if len(line) < 12 {
		return 0, fmt.Errorf("short status line %q", line)
	}
	status, err = strconv.Atoi(string(line[9:12]))
	if err != nil {
		return 0, fmt.Errorf("bad status line %q", line)
	}
	for {
		line, err = c.br.ReadSlice('\n')
		if err != nil {
			return 0, err
		}
		if len(line) <= 2 { // bare CRLF: end of headers
			break
		}
		const clPrefix = "Content-Length: "
		if len(line) > len(clPrefix) && string(line[:len(clPrefix)]) == clPrefix {
			v := strings.TrimSpace(string(line[len(clPrefix):]))
			if contentLength, err = strconv.Atoi(v); err != nil {
				return 0, fmt.Errorf("bad Content-Length %q", v)
			}
		}
	}
	if contentLength < 0 {
		return 0, fmt.Errorf("response without Content-Length")
	}
	if _, err := c.br.Discard(contentLength); err != nil {
		return 0, err
	}
	return status, nil
}

type modelInfo struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	InputDim    int    `json:"input_dim"`
	SegmentDim  int    `json:"segment_dim"`
	MaxSegments int    `json:"max_segments"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-loadgen: ")
	url := flag.String("url", "http://localhost:8080", "noble-serve base URL")
	mode := flag.String("mode", "localize", "workload: localize (stateless fingerprints) or track (stateful sessions)")
	model := flag.String("model", "", "model name (default: first model of the mode's kind from /v1/models)")
	concurrency := flag.Int("concurrency", 32, "concurrent in-flight requests (track: concurrent device sessions)")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	qps := flag.Float64("qps", 0, "target request rate (0 = closed-loop, as fast as possible)")
	seed := flag.Int64("seed", 1, "payload generator seed (also keys track-mode session ids)")
	wifiModel := flag.String("wifi-model", "", "track mode: wifi model for fixes (default: first wifi model)")
	fixEvery := flag.Int("fix-every", 16, "track mode: carry a wifi fingerprint fix every N steps (0 disables fixes)")
	window := flag.Int("window", 2, "track mode: session decode window in segments")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the load generator to this file")
	flag.Parse()
	if *mode != "localize" && *mode != "track" {
		log.Fatalf("unknown -mode %q (want localize or track)", *mode)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("creating %s: %v", *cpuprofile, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("starting CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	client := &http.Client{Timeout: 10 * time.Second}
	models := fetchModels(client, *url)

	// Pre-generate request-body pools so the hot loop only does HTTP.
	rng := rand.New(rand.NewSource(*seed))
	const pool = 256

	// makeFingerprint synthesizes one normalized scan.
	makeFingerprint := func(dim int) []float64 {
		fp := make([]float64, dim)
		for j := range fp {
			if rng.Float64() < 0.7 { // most WAPs unheard, like a real scan
				continue
			}
			// Normalized RSSI carries ~4 significant digits (integer dBm
			// over a ~75 dB span); full float64 mantissas would triple
			// the wire size for precision no scan possesses.
			fp[j] = math.Round(rng.Float64()*1e4) / 1e4
		}
		return fp
	}
	marshal := func(v any) []byte {
		raw, err := json.Marshal(v)
		if err != nil {
			log.Fatalf("encoding request: %v", err)
		}
		return raw
	}

	kind := "localize"
	var (
		bodies     [][]byte // localize mode: request pool
		createBody []byte   // track mode: first request of each session
		stepBodies [][]byte // track mode: plain segment appends
		fixBodies  [][]byte // track mode: segment + wifi fix
	)
	switch *mode {
	case "localize":
		m, ok := pick(models, "wifi", *model)
		if !ok {
			log.Fatalf("no wifi model %q at %s (have %+v)", *model, *url, models)
		}
		log.Printf("target %s model=%s input_dim=%d", *url, m.Name, m.InputDim)
		bodies = make([][]byte, pool)
		for i := range bodies {
			bodies[i] = marshal(map[string]any{"model": m.Name, "fingerprints": [][]float64{makeFingerprint(m.InputDim)}})
		}
	case "track":
		kind = "track"
		m, ok := pick(models, "imu", *model)
		if !ok {
			log.Fatalf("no imu model %q at %s (have %+v)", *model, *url, models)
		}
		// Synthetic per-segment frame summaries: values shape the decoded
		// positions, not the cost of a step, so noise is fine.
		makeSegment := func() []float64 {
			seg := make([]float64, m.SegmentDim)
			for j := range seg {
				seg[j] = math.Round(rng.NormFloat64()*1e3) / 1e3
			}
			return seg
		}
		createBody = marshal(map[string]any{
			"model": m.Name, "start": map[string]float64{"x": 0, "y": 0},
			"window": *window, "features": makeSegment(),
		})
		stepBodies = make([][]byte, pool)
		for i := range stepBodies {
			stepBodies[i] = marshal(map[string]any{"features": makeSegment()})
		}
		logLine := fmt.Sprintf("target %s model=%s segment_dim=%d window=%d", *url, m.Name, m.SegmentDim, *window)
		if *fixEvery > 0 {
			wm, ok := pick(models, "wifi", *wifiModel)
			if !ok {
				log.Fatalf("no wifi model %q for fixes at %s (have %+v)", *wifiModel, *url, models)
			}
			fixBodies = make([][]byte, pool)
			for i := range fixBodies {
				fixBodies[i] = marshal(map[string]any{
					"features":    makeSegment(),
					"wifi_model":  wm.Name,
					"fingerprint": makeFingerprint(wm.InputDim),
				})
			}
			logLine += fmt.Sprintf(" wifi_model=%s fix_every=%d", wm.Name, *fixEvery)
		}
		log.Print(logLine)
	}

	before := scrapeBatchStats(client, *url, kind)

	parsed, err := url2.Parse(*url)
	if err != nil {
		log.Fatalf("parsing -url: %v", err)
	}
	addr := parsed.Host

	var (
		sent     atomic.Int64
		errs     atomic.Int64
		latMu    sync.Mutex
		lats     []float64 // seconds
		deadline = time.Now().Add(*duration)
	)
	record := func(d time.Duration, ok bool) {
		sent.Add(1)
		if !ok {
			errs.Add(1)
			return
		}
		latMu.Lock()
		lats = append(lats, d.Seconds())
		latMu.Unlock()
	}
	// Each track-mode worker is one device streaming to its own session;
	// localize workers share the stateless endpoint.
	newConn := func(w int) *rawConn {
		path := "/v1/localize"
		if *mode == "track" {
			path = fmt.Sprintf("/v1/sessions/lg%d-%d/segments", *seed, w)
		}
		c, err := dialRaw(addr, path)
		if err != nil {
			log.Fatalf("connecting to %s: %v", addr, err)
		}
		return c
	}
	// bodyFor sequences one worker's requests: localize draws from the
	// shared pool; track creates the session first, then appends
	// segments with a periodic wifi fix.
	bodyFor := func(w, step int) []byte {
		if *mode == "localize" {
			return bodies[(w*31+step)%pool]
		}
		switch {
		case step == 0:
			return createBody
		case *fixEvery > 0 && step%*fixEvery == 0:
			return fixBodies[step%pool]
		default:
			return stepBodies[step%pool]
		}
	}
	fire := func(c *rawConn, body []byte) {
		start := time.Now()
		status, err := c.do(body)
		record(time.Since(start), err == nil && status == http.StatusOK)
	}

	start := time.Now()
	var wg sync.WaitGroup
	if *qps > 0 {
		// Open-loop: paced arrivals dispatched to a bounded worker pool.
		work := make(chan struct{}, *concurrency)
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := newConn(w)
				defer c.conn.Close()
				step := 0
				for range work {
					fire(c, bodyFor(w, step))
					step++
				}
			}(w)
		}
		interval := time.Duration(float64(time.Second) / *qps)
		tick := time.NewTicker(interval)
		for time.Now().Before(deadline) {
			<-tick.C
			select {
			case work <- struct{}{}: // drop the arrival if all workers are busy
			default:
			}
		}
		tick.Stop()
		close(work)
	} else {
		// Closed-loop: each worker keeps one request in flight on its
		// own persistent connection.
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := newConn(w)
				defer c.conn.Close()
				for step := 0; time.Now().Before(deadline); step++ {
					fire(c, bodyFor(w, step))
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := scrapeBatchStats(client, *url, kind)

	latMu.Lock()
	sort.Float64s(lats)
	latMu.Unlock()
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))] * 1000
	}
	var mean float64
	for _, v := range lats {
		mean += v
	}
	if len(lats) > 0 {
		mean = mean / float64(len(lats)) * 1000
	}

	loop := "closed-loop"
	if *qps > 0 {
		loop = fmt.Sprintf("open-loop %.0f qps", *qps)
	}
	unit := "req/s"
	if *mode == "track" {
		unit = "steps/s"
	}
	fmt.Printf("noble-loadgen report\n")
	fmt.Printf("  mode        %s seed=%d\n", *mode, *seed)
	fmt.Printf("  load        %s, concurrency %d, %v\n", loop, *concurrency, duration.Round(time.Millisecond))
	fmt.Printf("  requests    %d ok, %d errors\n", sent.Load()-errs.Load(), errs.Load())
	fmt.Printf("  throughput  %.1f %s\n", float64(sent.Load()-errs.Load())/elapsed.Seconds(), unit)
	fmt.Printf("  latency ms  mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		mean, q(0.50), q(0.90), q(0.99), q(1.0))
	if after.passes > before.passes {
		rows := after.rows - before.rows
		passes := after.passes - before.passes
		fmt.Printf("  batching    %d %s rows in %d forward passes (avg batch %.2f)\n",
			rows, kind, passes, float64(rows)/float64(passes))
	} else {
		fmt.Printf("  batching    no server batch stats observed for kind %q\n", kind)
	}
}

// fetchModels lists the server's registered models.
func fetchModels(client *http.Client, url string) []modelInfo {
	resp, err := client.Get(url + "/v1/models")
	if err != nil {
		log.Fatalf("listing models: %v", err)
	}
	defer resp.Body.Close()
	var listing struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		log.Fatalf("decoding /v1/models: %v", err)
	}
	return listing.Models
}

// pick selects a model of the wanted kind: the named one, or the first
// of that kind when want is empty.
func pick(models []modelInfo, kind, want string) (modelInfo, bool) {
	for _, m := range models {
		if m.Kind == kind && (want == "" || m.Name == want) {
			return m, true
		}
	}
	return modelInfo{}, false
}

// batchStats is the server-side micro-batch counters from /metrics.
type batchStats struct {
	rows, passes int64
}

// scrapeBatchStats reads one batcher kind's noble_batch_rows_{sum,count}
// series from /metrics; zeros on any failure (the report then omits
// batching).
func scrapeBatchStats(client *http.Client, url, kind string) batchStats {
	var out batchStats
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	sumPrefix := fmt.Sprintf("noble_batch_rows_sum{kind=%q} ", kind)
	countPrefix := fmt.Sprintf("noble_batch_rows_count{kind=%q} ", kind)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, sumPrefix):
			out.rows, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, countPrefix):
			out.passes, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		}
	}
	return out
}
