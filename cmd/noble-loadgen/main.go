// Command noble-loadgen replays synthetic fingerprint traffic against a
// running noble-serve and reports throughput and latency, so serving
// performance (and the effect of micro-batching) is measurable and
// trackable across revisions.
//
// Usage:
//
//	noble-loadgen [-url http://localhost:8080] [-model demo-wifi]
//	              [-concurrency 32] [-duration 10s] [-qps 0] [-seed 1]
//
// Each in-flight request carries one fingerprint — the paper's workload
// shape, where every device asks for its own position — and -concurrency
// controls how many devices query at once. With -qps 0 the load is
// closed-loop (every worker fires as fast as the server answers);
// otherwise arrivals are paced open-loop at the target rate. The report
// includes the server-side micro-batch occupancy scraped from /metrics,
// so coalescing is visible end to end.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	url2 "net/url"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// rawConn is a minimal persistent HTTP/1.1 client over one TCP
// connection. The stock http.Client costs tens of microseconds per
// request in transport bookkeeping — at serving rates that overhead,
// paid on the same cores as the server under test, dominates what we
// are trying to measure. One writer goroutine per connection, request
// bytes prebuilt, response headers scanned just enough to find the
// body length.
type rawConn struct {
	conn net.Conn
	br   *bufio.Reader
	wbuf []byte
	head []byte // "POST <path> HTTP/1.1\r\nHost: ...\r\nContent-Length: "
}

func dialRaw(addr, path string) (*rawConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	head := fmt.Sprintf("POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: ",
		path, addr)
	return &rawConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 16<<10),
		head: []byte(head),
	}, nil
}

// do sends one request body and fully consumes the response, returning
// the HTTP status code.
func (c *rawConn) do(body []byte) (int, error) {
	c.wbuf = c.wbuf[:0]
	c.wbuf = append(c.wbuf, c.head...)
	c.wbuf = strconv.AppendInt(c.wbuf, int64(len(body)), 10)
	c.wbuf = append(c.wbuf, '\r', '\n', '\r', '\n')
	c.wbuf = append(c.wbuf, body...)
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return 0, err
	}
	status := 0
	contentLength := -1
	// ReadSlice avoids a string allocation per header line; responses
	// fit the bufio buffer by construction.
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return 0, err
	}
	if len(line) < 12 {
		return 0, fmt.Errorf("short status line %q", line)
	}
	status, err = strconv.Atoi(string(line[9:12]))
	if err != nil {
		return 0, fmt.Errorf("bad status line %q", line)
	}
	for {
		line, err = c.br.ReadSlice('\n')
		if err != nil {
			return 0, err
		}
		if len(line) <= 2 { // bare CRLF: end of headers
			break
		}
		const clPrefix = "Content-Length: "
		if len(line) > len(clPrefix) && string(line[:len(clPrefix)]) == clPrefix {
			v := strings.TrimSpace(string(line[len(clPrefix):]))
			if contentLength, err = strconv.Atoi(v); err != nil {
				return 0, fmt.Errorf("bad Content-Length %q", v)
			}
		}
	}
	if contentLength < 0 {
		return 0, fmt.Errorf("response without Content-Length")
	}
	if _, err := c.br.Discard(contentLength); err != nil {
		return 0, err
	}
	return status, nil
}

type modelInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	InputDim int    `json:"input_dim"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-loadgen: ")
	url := flag.String("url", "http://localhost:8080", "noble-serve base URL")
	model := flag.String("model", "", "model name (default: first wifi model from /v1/models)")
	concurrency := flag.Int("concurrency", 32, "concurrent in-flight requests")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	qps := flag.Float64("qps", 0, "target request rate (0 = closed-loop, as fast as possible)")
	seed := flag.Int64("seed", 1, "fingerprint generator seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the load generator to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("creating %s: %v", *cpuprofile, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("starting CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	client := &http.Client{Timeout: 10 * time.Second}

	name, dim := pickModel(client, *url, *model)
	log.Printf("target %s model=%s input_dim=%d", *url, name, dim)

	// Pre-generate a pool of fingerprints so the hot loop only does HTTP.
	rng := rand.New(rand.NewSource(*seed))
	const pool = 256
	bodies := make([][]byte, pool)
	for i := range bodies {
		fp := make([]float64, dim)
		for j := range fp {
			if rng.Float64() < 0.7 { // most WAPs unheard, like a real scan
				continue
			}
			// Normalized RSSI carries ~4 significant digits (integer dBm
			// over a ~75 dB span); full float64 mantissas would triple
			// the wire size for precision no scan possesses.
			fp[j] = math.Round(rng.Float64()*1e4) / 1e4
		}
		raw, err := json.Marshal(map[string]any{"model": name, "fingerprints": [][]float64{fp}})
		if err != nil {
			log.Fatalf("encoding fingerprint: %v", err)
		}
		bodies[i] = raw
	}

	before := scrapeBatchStats(client, *url)

	parsed, err := url2.Parse(*url)
	if err != nil {
		log.Fatalf("parsing -url: %v", err)
	}
	addr := parsed.Host

	var (
		sent     atomic.Int64
		errs     atomic.Int64
		latMu    sync.Mutex
		lats     []float64 // seconds
		deadline = time.Now().Add(*duration)
	)
	record := func(d time.Duration, ok bool) {
		sent.Add(1)
		if !ok {
			errs.Add(1)
			return
		}
		latMu.Lock()
		lats = append(lats, d.Seconds())
		latMu.Unlock()
	}
	newConn := func() *rawConn {
		c, err := dialRaw(addr, "/v1/localize")
		if err != nil {
			log.Fatalf("connecting to %s: %v", addr, err)
		}
		return c
	}
	fire := func(c *rawConn, i int) {
		start := time.Now()
		status, err := c.do(bodies[i%pool])
		record(time.Since(start), err == nil && status == http.StatusOK)
	}

	start := time.Now()
	var wg sync.WaitGroup
	if *qps > 0 {
		// Open-loop: paced arrivals dispatched to a bounded worker pool.
		work := make(chan int, *concurrency)
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := newConn()
				defer c.conn.Close()
				for i := range work {
					fire(c, i)
				}
			}()
		}
		interval := time.Duration(float64(time.Second) / *qps)
		tick := time.NewTicker(interval)
		i := 0
		for time.Now().Before(deadline) {
			<-tick.C
			select {
			case work <- i: // drop the arrival if all workers are busy
			default:
			}
			i++
		}
		tick.Stop()
		close(work)
	} else {
		// Closed-loop: each worker keeps one request in flight on its
		// own persistent connection.
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := newConn()
				defer c.conn.Close()
				for i := w; time.Now().Before(deadline); i += *concurrency {
					fire(c, i)
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := scrapeBatchStats(client, *url)

	latMu.Lock()
	sort.Float64s(lats)
	latMu.Unlock()
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))] * 1000
	}
	var mean float64
	for _, v := range lats {
		mean += v
	}
	if len(lats) > 0 {
		mean = mean / float64(len(lats)) * 1000
	}

	mode := "closed-loop"
	if *qps > 0 {
		mode = fmt.Sprintf("open-loop %.0f qps", *qps)
	}
	fmt.Printf("noble-loadgen report\n")
	fmt.Printf("  target      %s model=%s input_dim=%d seed=%d\n", *url, name, dim, *seed)
	fmt.Printf("  load        %s, concurrency %d, %v\n", mode, *concurrency, duration.Round(time.Millisecond))
	fmt.Printf("  requests    %d ok, %d errors\n", sent.Load()-errs.Load(), errs.Load())
	fmt.Printf("  throughput  %.1f req/s\n", float64(sent.Load()-errs.Load())/elapsed.Seconds())
	fmt.Printf("  latency ms  mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		mean, q(0.50), q(0.90), q(0.99), q(1.0))
	if after.passes > before.passes {
		rows := after.rows - before.rows
		passes := after.passes - before.passes
		fmt.Printf("  batching    %d rows in %d forward passes (avg batch %.2f)\n",
			rows, passes, float64(rows)/float64(passes))
	} else {
		fmt.Printf("  batching    no server batch stats observed\n")
	}
}

// pickModel resolves the model name and input dimension from /v1/models.
func pickModel(client *http.Client, url, want string) (string, int) {
	resp, err := client.Get(url + "/v1/models")
	if err != nil {
		log.Fatalf("listing models: %v", err)
	}
	defer resp.Body.Close()
	var listing struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		log.Fatalf("decoding /v1/models: %v", err)
	}
	for _, m := range listing.Models {
		if m.Kind != "wifi" {
			continue
		}
		if want == "" || m.Name == want {
			return m.Name, m.InputDim
		}
	}
	log.Fatalf("no wifi model %q at %s (have %+v)", want, url, listing.Models)
	return "", 0
}

// batchStats is the server-side micro-batch counters from /metrics.
type batchStats struct {
	rows, passes int64
}

// scrapeBatchStats reads noble_batch_rows_{sum,count} from /metrics;
// zeros on any failure (the report then omits batching).
func scrapeBatchStats(client *http.Client, url string) batchStats {
	var out batchStats
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "noble_batch_rows_sum "):
			out.rows, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, "noble_batch_rows_count "):
			out.passes, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		}
	}
	return out
}
