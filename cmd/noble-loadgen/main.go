// Command noble-loadgen replays synthetic device traffic against a
// running noble-serve and reports throughput and latency, so serving
// performance (and the effect of micro-batching) is measurable and
// trackable across revisions. It is built entirely on the public client
// SDK (noble/client) — the same code path a real device fleet uses.
//
// Usage:
//
//	noble-loadgen [-url http://localhost:8080] [-mode localize|track|stream]
//	              [-model NAME] [-concurrency 32] [-duration 10s]
//	              [-qps 0] [-seed 1] [-deadline 0]
//	              [-wifi-model NAME] [-fix-every 16] [-window 2]
//
// In localize mode (the default) each in-flight request carries one
// fingerprint — the paper's workload shape, where every device asks for
// its own position — and -concurrency controls how many devices query at
// once. In track mode each worker is one device with a stateful tracking
// session: it streams one IMU segment per request to
// /sessions/{id}/segments, and every -fix-every steps the request also
// carries a WiFi fingerprint that re-anchors the session through the
// localize path, replaying the paper's hybrid IMU+WiFi tracking at fleet
// scale; the reported latency is then per tracking step. Stream mode is
// track mode over the /v2 NDJSON streaming protocol: one connection per
// device, one line per segment. With -qps 0 the load is closed-loop
// (every worker fires as fast as the server answers); otherwise arrivals
// are paced open-loop at the target rate. -deadline sets a per-request
// deadline (propagated as X-Deadline-Ms); expired requests count as
// errors and their rows are dropped server-side without consuming
// forward-pass rows — the report scrapes both the batch occupancy and
// the dropped-row counter from /metrics so coalescing and cancellation
// are visible end to end.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"noble/client"
	"noble/internal/loadshape"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-loadgen: ")
	url := flag.String("url", "http://localhost:8080", "noble-serve base URL")
	mode := flag.String("mode", "localize", "workload: localize (stateless fingerprints), track (stateful sessions), or stream (NDJSON streaming sessions)")
	model := flag.String("model", "", "model name (default: first model of the mode's kind from the server)")
	concurrency := flag.Int("concurrency", 32, "concurrent in-flight requests (track/stream: concurrent device sessions)")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	qps := flag.Float64("qps", 0, "target request rate (0 = closed-loop, as fast as possible)")
	seed := flag.Int64("seed", 1, "payload generator seed (also keys track-mode session ids)")
	deadline := flag.Duration("deadline", 0, "per-request deadline (0 disables); expired requests count as errors")
	wifiModel := flag.String("wifi-model", "", "track/stream mode: wifi model for fixes (default: first wifi model)")
	fixEvery := flag.Int("fix-every", 16, "track/stream mode: carry a wifi fingerprint fix every N steps (0 disables fixes)")
	window := flag.Int("window", 2, "track/stream mode: session decode window in segments")
	protocol := flag.String("protocol", "auto", "wire protocol: auto (v2 with v1 fallback) or v1 (pin the legacy protocol, for A/B comparison)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the load generator to this file")
	flag.Parse()
	if *mode != "localize" && *mode != "track" && *mode != "stream" {
		log.Fatalf("unknown -mode %q (want localize, track, or stream)", *mode)
	}
	if *mode == "stream" && *deadline > 0 {
		// The stream protocol has no per-line deadlines (one long-lived
		// connection per device); silently ignoring the flag would make a
		// zero-error report read as "no deadline violations".
		log.Fatalf("-deadline is not supported in -mode stream")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("creating %s: %v", *cpuprofile, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("starting CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	// Retries off: the generator measures the server as it is; a failed
	// request is an error in the report, not something to paper over.
	// The fast transport keeps the generator's own CPU out of the
	// measurement (it shares cores with the server under test).
	opts := []client.Option{client.WithRetries(0, 0), client.WithFastTransport()}
	if *protocol == "v1" {
		opts = append(opts, client.WithV1())
	} else if *protocol != "auto" {
		log.Fatalf("unknown -protocol %q (want auto or v1)", *protocol)
	}
	c := client.New(*url, opts...)
	ctx := context.Background()
	models, err := c.Models(ctx)
	if err != nil {
		log.Fatalf("listing models: %v", err)
	}

	// Pre-generate payload pools so the hot loop only does HTTP + JSON.
	rng := rand.New(rand.NewSource(*seed))
	const pool = 256

	// Payload synthesis is shared with the noble-perf harness (via
	// internal/loadshape), so ad-hoc load runs and the gated BENCH.json
	// replay the same traffic shape.
	makeFingerprint := func(dim int) []float64 { return loadshape.SynthFingerprint(rng, dim) }

	kind := "localize"
	var (
		prepared  []*client.PreparedLocalize // localize mode: pre-encoded request pool
		createReq client.AppendRequest       // track/stream: first request of each session
		stepReqs  []client.AppendRequest     // plain segment appends
		fixReqs   []client.AppendRequest     // segment + wifi fix
	)
	switch *mode {
	case "localize":
		m, ok := pick(models, "wifi", *model)
		if !ok {
			log.Fatalf("no wifi model %q at %s (have %+v)", *model, *url, models)
		}
		log.Printf("target %s model=%s input_dim=%d", *url, m.Name, m.InputDim)
		// Encode the pool once so the hot loop measures the server, not
		// this process's float formatting.
		prepared = make([]*client.PreparedLocalize, pool)
		for i := range prepared {
			prepared[i] = client.PrepareLocalize(m.Name, makeFingerprint(m.InputDim))
		}
	case "track", "stream":
		kind = "track"
		m, ok := pick(models, "imu", *model)
		if !ok {
			log.Fatalf("no imu model %q at %s (have %+v)", *model, *url, models)
		}
		makeSegment := func() []float64 { return loadshape.SynthSegment(rng, m.SegmentDim) }
		createReq = client.AppendRequest{
			Model: m.Name, Start: &client.XY{}, Window: *window, Features: makeSegment(),
		}
		stepReqs = make([]client.AppendRequest, pool)
		for i := range stepReqs {
			stepReqs[i] = client.AppendRequest{Features: makeSegment()}
		}
		logLine := fmt.Sprintf("target %s mode=%s model=%s segment_dim=%d window=%d", *url, *mode, m.Name, m.SegmentDim, *window)
		if *fixEvery > 0 {
			wm, ok := pick(models, "wifi", *wifiModel)
			if !ok {
				log.Fatalf("no wifi model %q for fixes at %s (have %+v)", *wifiModel, *url, models)
			}
			fixReqs = make([]client.AppendRequest, pool)
			for i := range fixReqs {
				fixReqs[i] = client.AppendRequest{
					Features:    makeSegment(),
					WiFiModel:   wm.Name,
					Fingerprint: makeFingerprint(wm.InputDim),
				}
			}
			logLine += fmt.Sprintf(" wifi_model=%s fix_every=%d", wm.Name, *fixEvery)
		}
		log.Print(logLine)
	}

	before := scrapeBatchStats(ctx, c, kind)

	var (
		sent       atomic.Int64
		errs       atomic.Int64
		errs4xx    atomic.Int64 // server rejected the request (non-2xx, 4xx class)
		errs5xx    atomic.Int64 // server failed the request (5xx class)
		errsDL     atomic.Int64 // the -deadline expired
		errsConn   atomic.Int64 // connection/transport failures, incl. mid-stream drops
		streamEnds atomic.Int64 // device streams terminated early by an error
		latMu      sync.Mutex
		lats       []float64 // seconds
		lgDeadline = time.Now().Add(*duration)
	)
	// record classifies a finished request. Non-2xx responses and
	// mid-stream connection errors are counted in their own buckets —
	// folding them into one "errors" number masks server-side drops
	// (e.g. during drain tests, where 503s and severed streams are the
	// whole point of the measurement).
	record := func(d time.Duration, err error) {
		sent.Add(1)
		if err != nil {
			errs.Add(1)
			// Shared classifier (internal/loadshape): BENCH.json and
			// this report must bucket the identical failure identically.
			switch loadshape.ClassifyError(err) {
			case loadshape.ErrClass5xx:
				errs5xx.Add(1)
			case loadshape.ErrClass4xx:
				errs4xx.Add(1)
			case loadshape.ErrClassDeadline:
				errsDL.Add(1)
			default:
				errsConn.Add(1)
			}
			return
		}
		latMu.Lock()
		lats = append(lats, d.Seconds())
		latMu.Unlock()
	}
	// reqCtx applies the optional per-request deadline.
	reqCtx := func() (context.Context, context.CancelFunc) {
		if *deadline > 0 {
			return context.WithTimeout(ctx, *deadline)
		}
		return ctx, func() {}
	}
	// stepReq sequences one track/stream worker's requests: create the
	// session first, then append segments with a periodic wifi fix.
	stepReq := func(step int) client.AppendRequest {
		switch {
		case step == 0:
			return createReq
		case *fixEvery > 0 && step%*fixEvery == 0:
			return fixReqs[step%pool]
		default:
			return stepReqs[step%pool]
		}
	}
	start := time.Now()
	var wg sync.WaitGroup

	// runWorker is one closed-loop device; paced is non-nil in open-loop
	// mode and gates each request on an arrival tick.
	runWorker := func(w int, paced <-chan struct{}) {
		defer wg.Done()
		var (
			sess   *client.Session
			stream *client.TrackStream
		)
		switch *mode {
		case "track":
			sess = c.Session(fmt.Sprintf("lg%d-%d", *seed, w))
		case "stream":
			open := client.StreamOpen{
				Session:       fmt.Sprintf("lg%d-%d", *seed, w),
				AppendRequest: createReq,
			}
			st, err := c.TrackStream(ctx, open)
			if err != nil {
				log.Fatalf("worker %d: opening stream: %v", w, err)
			}
			if _, err := st.Recv(); err != nil {
				log.Fatalf("worker %d: stream open ack: %v", w, err)
			}
			stream = st
			defer stream.Close()
		}
		for step := 0; ; step++ {
			if paced != nil {
				if _, ok := <-paced; !ok {
					return
				}
			} else if !time.Now().Before(lgDeadline) {
				return
			}
			rctx, cancel := reqCtx()
			t0 := time.Now()
			var err error
			switch *mode {
			case "localize":
				_, err = c.LocalizePrepared(rctx, prepared[(w*31+step)%pool])
			case "track":
				_, err = sess.Append(rctx, stepReq(step))
			case "stream":
				// Per-line deadlines are not part of the stream protocol;
				// the latency is still the full send→estimate round trip.
				if err = stream.Send(stepReq(step + 1)); err == nil {
					_, err = stream.Recv()
				}
			}
			cancel()
			record(time.Since(t0), err)
			if *mode == "stream" && err != nil {
				// A stream error is terminal for this device: the
				// connection is gone (or the server sent a line-level
				// error and closed). Count the early termination so a
				// report with 31 of 32 devices dead reads as such.
				streamEnds.Add(1)
				return
			}
		}
	}

	if *qps > 0 {
		// Open-loop: paced arrivals dispatched to a bounded worker pool.
		work := make(chan struct{}, *concurrency)
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go runWorker(w, work)
		}
		interval := time.Duration(float64(time.Second) / *qps)
		tick := time.NewTicker(interval)
		for time.Now().Before(lgDeadline) {
			<-tick.C
			select {
			case work <- struct{}{}: // drop the arrival if all workers are busy
			default:
			}
		}
		tick.Stop()
		close(work)
	} else {
		// Closed-loop: each worker keeps one request in flight.
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go runWorker(w, nil)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := scrapeBatchStats(ctx, c, kind)

	latMu.Lock()
	sort.Float64s(lats)
	latMu.Unlock()
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))] * 1000
	}
	var mean float64
	for _, v := range lats {
		mean += v
	}
	if len(lats) > 0 {
		mean = mean / float64(len(lats)) * 1000
	}

	loop := "closed-loop"
	if *qps > 0 {
		loop = fmt.Sprintf("open-loop %.0f qps", *qps)
	}
	unit := "req/s"
	if *mode != "localize" {
		unit = "steps/s"
	}
	fmt.Printf("noble-loadgen report\n")
	fmt.Printf("  mode        %s seed=%d\n", *mode, *seed)
	fmt.Printf("  load        %s, concurrency %d, %v\n", loop, *concurrency, duration.Round(time.Millisecond))
	fmt.Printf("  requests    %d ok, %d errors\n", sent.Load()-errs.Load(), errs.Load())
	if errs.Load() > 0 {
		fmt.Printf("  errors      http-4xx=%d http-5xx=%d deadline=%d conn=%d\n",
			errs4xx.Load(), errs5xx.Load(), errsDL.Load(), errsConn.Load())
	}
	if n := streamEnds.Load(); n > 0 {
		fmt.Printf("  streams     %d device stream(s) ended early on an error\n", n)
	}
	fmt.Printf("  throughput  %.1f %s\n", float64(sent.Load()-errs.Load())/elapsed.Seconds(), unit)
	fmt.Printf("  latency ms  mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		mean, q(0.50), q(0.90), q(0.99), q(1.0))
	if after.passes > before.passes {
		rows := after.rows - before.rows
		passes := after.passes - before.passes
		fmt.Printf("  batching    %d %s rows in %d forward passes (avg batch %.2f)\n",
			rows, kind, passes, float64(rows)/float64(passes))
	} else {
		fmt.Printf("  batching    no server batch stats observed for kind %q\n", kind)
	}
	if dropped := after.dropped - before.dropped; dropped > 0 {
		fmt.Printf("  cancelled   %d %s rows dropped from the batch queue before their pass\n", dropped, kind)
	}
}

// pick selects a model of the wanted kind: the named one, or the first
// of that kind when want is empty.
func pick(models []client.ModelInfo, kind, want string) (client.ModelInfo, bool) {
	for _, m := range models {
		if m.Kind == kind && (want == "" || m.Name == want) {
			return m, true
		}
	}
	return client.ModelInfo{}, false
}

// batchStats is the server-side micro-batch counters from /metrics.
type batchStats struct {
	rows, passes, dropped int64
}

// scrapeBatchStats reads one batcher kind's noble_batch_rows_{sum,count}
// and noble_batch_dropped_rows_total series from the server's metrics;
// zeros on any failure (the report then omits batching).
func scrapeBatchStats(ctx context.Context, c *client.Client, kind string) batchStats {
	var out batchStats
	text, err := c.Metrics(ctx)
	if err != nil {
		return out
	}
	sumPrefix := fmt.Sprintf("noble_batch_rows_sum{kind=%q} ", kind)
	countPrefix := fmt.Sprintf("noble_batch_rows_count{kind=%q} ", kind)
	dropPrefix := fmt.Sprintf("noble_batch_dropped_rows_total{kind=%q} ", kind)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, sumPrefix):
			out.rows, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, countPrefix):
			out.passes, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, dropPrefix):
			out.dropped, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		}
	}
	return out
}
