// Command noble-replay re-runs a recorded noble-serve session journal
// against a fresh Engine and reports end-to-end trajectory divergence
// versus the recorded run — turning any production trace captured with
// `noble-serve -state-dir` into an offline benchmark and regression
// scenario.
//
// Usage:
//
//	noble-replay -journal ./state -models ./models [-speed 0]
//	             [-eps 0] [-batch-window 2ms] [-batch-max 64]
//
// Every recorded session is replayed concurrently (as its traffic was),
// each event in order, through the same engine entry points the HTTP
// handlers use — so micro-batching coalesces replayed steps exactly as
// it coalesced the live ones. -speed scales the recorded timeline (1 =
// real time, 10 = ten times faster); the default 0 replays as fast as
// possible. Each replayed step's decoded estimate is compared with the
// recorded one: with the same model bundles the forward pass is
// deterministic and the report shows zero divergence, so a non-zero
// report after a model or code change is a behavioral diff against
// recorded production traffic. Exits non-zero when any step diverged
// beyond -eps or any replay call failed, so it slots into CI directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"noble/internal/serve"
	"noble/internal/store"
)

func main() {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	journalDir := flag.String("journal", "", "state directory recorded by noble-serve -state-dir (required)")
	modelsDir := flag.String("models", "models", "bundle directory with the models the journal was recorded against")
	speed := flag.Float64("speed", 0, "timeline multiplier: 1 = recorded pacing, 10 = 10x, 0 = as fast as possible")
	eps := flag.Float64("eps", 0, "divergence tolerance in position units (0 = exact)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "micro-batch coalescing window (0 disables batching)")
	batchMax := flag.Int("batch-max", 64, "max rows per coalesced forward pass")
	flag.Parse()
	if *journalDir == "" {
		fatal("-journal is required")
	}

	rec, err := store.Load(*journalDir)
	if err != nil {
		fatal("loading journal", "dir", *journalDir, "err", err)
	}
	if len(rec.Histories) == 0 {
		fatal("journal holds no sessions", "dir", *journalDir)
	}

	logf := func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }
	reg := serve.NewRegistry(*modelsDir, logf)
	if _, _, err := reg.Reload(); err != nil {
		fatal("loading bundles", "dir", *modelsDir, "err", err)
	}
	engine := serve.NewEngine(serve.Config{
		Registry:    reg,
		BatchWindow: *batchWindow,
		MaxBatch:    *batchMax,
	})

	rep, err := serve.ReplayJournal(context.Background(), engine, rec, serve.ReplayOptions{
		Speed: *speed, Eps: *eps,
	})
	if err != nil {
		fatal("replay", "err", err)
	}

	pace := "as fast as possible"
	if *speed > 0 {
		pace = fmt.Sprintf("%gx recorded pacing", *speed)
	}
	stepsPerSec := float64(rep.Steps) / rep.Elapsed.Seconds()
	fmt.Printf("noble-replay report\n")
	fmt.Printf("  journal     %s: %d session(s) (%d from snapshot, %d skipped), %d live / %d closed in record\n",
		*journalDir, rep.Sessions, rep.Seeded, rep.Skipped, rec.Stats.Live, rec.Stats.Closed)
	fmt.Printf("  recorded    %d steps, %d re-anchors, %d closes over %v\n",
		rep.Steps, rep.ReAnchors, rep.Closes, rep.RecordedSpan.Round(time.Millisecond))
	fmt.Printf("  replayed    in %v at %s (%.1f steps/s), %d call error(s)\n",
		rep.Elapsed.Round(time.Millisecond), pace, stepsPerSec, rep.Errors)
	fmt.Printf("  divergence  %d/%d steps beyond eps=%g; max=%.6g mean=%.6g\n",
		rep.DivergedSteps, rep.ComparedSteps, *eps, rep.MaxDivergence, rep.MeanDivergence())
	fmt.Printf("  final       %d/%d live sessions ended within eps of the recorded position\n",
		rep.FinalCompared-rep.FinalDiverged, rep.FinalCompared)

	if rep.DivergedSteps > 0 || rep.FinalDiverged > 0 || rep.Errors > 0 {
		os.Exit(1)
	}
}
