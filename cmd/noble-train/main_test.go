package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// TestHelpGolden pins the command's -h output (modulo the binary-name
// "Usage of" header). The refactor that moved the training path into
// internal/train must keep the flag surface byte-identical; any flag
// change has to be deliberate enough to update the golden file.
//
// Regenerate with: go test ./cmd/noble-train -run TestHelpGolden -update
var update = flag.Bool("update", false, "rewrite testdata/help.golden")

func TestHelpGolden(t *testing.T) {
	fs := flag.NewFlagSet("noble-train", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	registerFlags(fs)
	fs.PrintDefaults()

	golden := filepath.Join("testdata", "help.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing %s: %v", golden, err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s: %v", golden, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("flag help drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}
