// Command noble-train trains a NObLe Wi-Fi localization model on a
// synthetic campus or on a UJIIndoorLoc-format CSV, evaluates it, and
// optionally saves the weights.
//
// Usage:
//
//	noble-train [-dataset uji|ipin] [-size small|full] [-epochs N]
//	            [-tau T] [-save model.gob] [-bundle dir [-name n]]
//	noble-train -train-csv train.csv -test-csv test.csv [-threshold -104]
//
// With -bundle, the trained model is published as a noble-serve bundle
// (manifest.json + weights.gob) at <dir>/<name>/, ready to be picked up
// by a running server's hot reload. Bundles require a synthetic dataset:
// the manifest records the generation spec so the serving side can
// rebuild the architecture deterministically, which is impossible for an
// external CSV.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/eval"
	"noble/internal/geo"
	"noble/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-train: ")
	datasetFlag := flag.String("dataset", "uji", "synthetic dataset: uji or ipin")
	sizeFlag := flag.String("size", "small", "synthetic dataset size: small or full")
	trainCSV := flag.String("train-csv", "", "UJIIndoorLoc-format training CSV (overrides -dataset)")
	testCSV := flag.String("test-csv", "", "UJIIndoorLoc-format test CSV (required with -train-csv)")
	threshold := flag.Float64("threshold", -104, "detection threshold (dBm) for CSV normalization")
	epochs := flag.Int("epochs", 0, "training epochs (0 = config default)")
	tau := flag.Float64("tau", 0, "fine quantization cell side in meters (0 = default 0.4)")
	saveFlag := flag.String("save", "", "write trained weights to this file")
	bundleFlag := flag.String("bundle", "", "publish the model as a noble-serve bundle under this directory")
	nameFlag := flag.String("name", "", "bundle name (default <dataset>-<size>)")
	precision := flag.String("precision", "fp64", "serving tier to publish: fp64, or int8 (runs calibration plus the publish-blocking accuracy gate)")
	calibMethod := flag.String("calib-method", "absmax", "int8 activation range calibration: absmax or percentile")
	calibPercentile := flag.Float64("calib-percentile", 99.9, "percentile for -calib-method=percentile")
	calibSamples := flag.Int("calib-samples", 0, "max validation rows consumed by calibration (0 = default)")
	errorBudget := flag.Float64("error-budget", 0, "int8 accuracy gate: max relative mean-error increase in percent (0 = default 2)")
	verbose := flag.Bool("v", false, "log per-epoch loss")
	flag.Parse()
	if *precision != core.PrecisionFP64 && *precision != core.PrecisionInt8 {
		log.Fatalf("-precision %q: want fp64 or int8", *precision)
	}

	ds, spec := loadDataset(*datasetFlag, *sizeFlag, *trainCSV, *testCSV, *threshold)
	if *bundleFlag != "" && spec == nil {
		log.Fatal("-bundle requires a synthetic dataset (the manifest must record a reproducible generation spec)")
	}

	cfg := core.DefaultWiFiConfig()
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	if *tau > 0 {
		cfg.TauFine = *tau
		if cfg.TauCoarse <= *tau {
			cfg.TauCoarse = *tau * 4
		}
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	fmt.Printf("training on %d samples (%d WAPs, %d buildings, %d floors)\n",
		len(ds.Train), ds.NumWAPs, ds.NumBuildings, ds.NumFloors)
	model := core.TrainWiFi(ds, cfg)
	fmt.Printf("model: %d neighborhood classes, %d MACs/inference\n", model.Classes(), model.FLOPs())

	if len(ds.Test) > 0 {
		x := dataset.FeaturesMatrix(ds.Test)
		preds := model.PredictMatrix(x)
		pos := make([]geo.Point, len(preds))
		floors := make([]int, len(preds))
		buildings := make([]int, len(preds))
		for i, p := range preds {
			pos[i] = p.Pos
			floors[i] = p.Floor
			buildings[i] = p.Building
		}
		stats := eval.Stats(eval.Errors(pos, dataset.Positions(ds.Test)))
		fmt.Printf("test: mean %.2f m, median %.2f m, p90 %.2f m (n=%d)\n",
			stats.Mean, stats.Median, stats.P90, stats.N)
		fmt.Printf("test: building acc %.2f%%, floor acc %.2f%%\n",
			100*eval.HitRate(buildings, dataset.BuildingLabels(ds.Test)),
			100*eval.HitRate(floors, dataset.FloorLabels(ds.Test)))
	}

	// The quantized tier: calibrate on the validation split and enforce
	// the accuracy gate BEFORE anything is written. A model that fails
	// the gate is never saved or published as int8 — that is the entire
	// point of the gate.
	var calib *serve.CalibrationFile
	if *precision == core.PrecisionInt8 {
		var err error
		calib, err = serve.QuantizeWiFiModel(model, ds, serve.QuantizeOptions{
			Method:       *calibMethod,
			Percentile:   *calibPercentile,
			CalibSamples: *calibSamples,
			BudgetPct:    *errorBudget,
		})
		if err != nil {
			log.Fatalf("int8 publish blocked: %v", err)
		}
		budget := *errorBudget
		if budget == 0 {
			budget = serve.DefaultErrorBudgetPct
		}
		fmt.Printf("int8 gate passed: mean error %.2f m (fp64) -> %.2f m (int8), delta %+.2f%% (budget %.2f%%)\n",
			calib.FP64MeanErr, calib.Int8MeanErr, calib.DeltaPct, budget)
	}

	if *saveFlag != "" {
		f, err := os.Create(*saveFlag)
		if err != nil {
			log.Fatalf("creating %s: %v", *saveFlag, err)
		}
		if err := model.Save(f); err != nil {
			f.Close()
			log.Fatalf("saving model: %v", err)
		}
		// Close errors carry write-back failures (full disk): check them
		// instead of deferring, so we never report success over a
		// truncated weights file.
		if err := f.Close(); err != nil {
			log.Fatalf("closing %s: %v", *saveFlag, err)
		}
		fmt.Printf("weights written to %s\n", *saveFlag)
	}

	if *bundleFlag != "" {
		spec.Config = cfg
		name := *nameFlag
		if name == "" {
			name = fmt.Sprintf("%s-%s", *datasetFlag, *sizeFlag)
		}
		man := serve.Manifest{Kind: serve.KindWiFi, WiFi: spec}
		var extras []serve.ExtraFile
		if calib != nil {
			man.Precision = &serve.PrecisionBlock{
				Mode:           core.PrecisionInt8,
				ErrorBudgetPct: *errorBudget,
			}
			extras = append(extras, serve.CalibrationExtra("calibration.json", calib))
		}
		if err := serve.WriteBundle(*bundleFlag, name, man, func(f *os.File) error {
			return model.Save(f)
		}, extras...); err != nil {
			log.Fatalf("publishing bundle: %v", err)
		}
		fmt.Printf("bundle published to %s/%s\n", *bundleFlag, name)
	}
}

// loadDataset materializes the requested dataset. For synthetic datasets
// the returned spec records how to regenerate it (for serving bundles);
// it is nil for CSV input.
func loadDataset(name, size, trainCSV, testCSV string, threshold float64) (*dataset.WiFi, *serve.WiFiBundle) {
	if trainCSV != "" {
		if testCSV == "" {
			log.Fatal("-train-csv requires -test-csv")
		}
		train := mustLoadCSV(trainCSV, threshold)
		test := mustLoadCSV(testCSV, threshold)
		maxB, maxF := 0, 0
		for _, s := range append(append([]dataset.WiFiSample{}, train...), test...) {
			if s.Building > maxB {
				maxB = s.Building
			}
			if s.Floor > maxF {
				maxF = s.Floor
			}
		}
		return &dataset.WiFi{
			NumWAPs:      len(train[0].RSSI),
			NumBuildings: maxB + 1,
			NumFloors:    maxF + 1,
			Train:        train,
			Test:         test,
		}, nil
	}
	var cfg dataset.WiFiConfig
	switch {
	case name == "uji" && size == "full":
		cfg = dataset.DefaultUJIConfig()
	case name == "uji":
		cfg = dataset.SmallUJIConfig()
	case name == "ipin" && size == "full":
		cfg = dataset.DefaultIPINConfig()
	case name == "ipin":
		cfg = dataset.SmallIPINConfig()
	default:
		log.Fatalf("unknown dataset %q (want uji or ipin)", name)
	}
	if name == "uji" {
		return dataset.SynthUJI(cfg), &serve.WiFiBundle{Plan: "uji", Dataset: cfg}
	}
	return dataset.SynthIPIN(cfg), &serve.WiFiBundle{Plan: "ipin", Dataset: cfg}
}

func mustLoadCSV(path string, threshold float64) []dataset.WiFiSample {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	samples, err := dataset.LoadUJICSV(f, threshold)
	if err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	if len(samples) == 0 {
		log.Fatalf("%s contains no samples", path)
	}
	return samples
}
