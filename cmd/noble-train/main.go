// Command noble-train trains a NObLe Wi-Fi localization model on a
// synthetic campus or on a UJIIndoorLoc-format CSV, evaluates it, and
// optionally saves the weights.
//
// Usage:
//
//	noble-train [-dataset uji|ipin] [-size small|full] [-epochs N]
//	            [-tau T] [-save model.gob] [-bundle dir [-name n]]
//	noble-train -train-csv train.csv -test-csv test.csv [-threshold -104]
//
// With -bundle, the trained model is published as a noble-serve bundle
// (manifest.json + weights.gob) at <dir>/<name>/, ready to be picked up
// by a running server's hot reload. Bundles require a synthetic dataset:
// the manifest records the generation spec so the serving side can
// rebuild the architecture deterministically, which is impossible for an
// external CSV.
//
// The command is a flag shim over internal/train, which holds the whole
// training path (including the int8 calibration gate) so the retraining
// loop in internal/retrain can invoke it programmatically.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"noble/internal/core"
	"noble/internal/train"
)

// cmdFlags is the command's flag set. registerFlags is split out from
// main so the golden help test can render the exact usage text without
// running the command; the refactor to internal/train must never change
// a flag.
type cmdFlags struct {
	dataset, size      *string
	trainCSV, testCSV  *string
	threshold          *float64
	epochs             *int
	tau                *float64
	save, bundle, name *string
	precision          *string
	calibMethod        *string
	calibPercentile    *float64
	calibSamples       *int
	errorBudget        *float64
	verbose            *bool
}

func registerFlags(fs *flag.FlagSet) *cmdFlags {
	return &cmdFlags{
		dataset:         fs.String("dataset", "uji", "synthetic dataset: uji or ipin"),
		size:            fs.String("size", "small", "synthetic dataset size: small or full"),
		trainCSV:        fs.String("train-csv", "", "UJIIndoorLoc-format training CSV (overrides -dataset)"),
		testCSV:         fs.String("test-csv", "", "UJIIndoorLoc-format test CSV (required with -train-csv)"),
		threshold:       fs.Float64("threshold", -104, "detection threshold (dBm) for CSV normalization"),
		epochs:          fs.Int("epochs", 0, "training epochs (0 = config default)"),
		tau:             fs.Float64("tau", 0, "fine quantization cell side in meters (0 = default 0.4)"),
		save:            fs.String("save", "", "write trained weights to this file"),
		bundle:          fs.String("bundle", "", "publish the model as a noble-serve bundle under this directory"),
		name:            fs.String("name", "", "bundle name (default <dataset>-<size>)"),
		precision:       fs.String("precision", "fp64", "serving tier to publish: fp64, or int8 (runs calibration plus the publish-blocking accuracy gate)"),
		calibMethod:     fs.String("calib-method", "absmax", "int8 activation range calibration: absmax or percentile"),
		calibPercentile: fs.Float64("calib-percentile", 99.9, "percentile for -calib-method=percentile"),
		calibSamples:    fs.Int("calib-samples", 0, "max validation rows consumed by calibration (0 = default)"),
		errorBudget:     fs.Float64("error-budget", 0, "int8 accuracy gate: max relative mean-error increase in percent (0 = default 2)"),
		verbose:         fs.Bool("v", false, "log per-epoch loss"),
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-train: ")
	f := registerFlags(flag.CommandLine)
	flag.Parse()
	if *f.precision != core.PrecisionFP64 && *f.precision != core.PrecisionInt8 {
		log.Fatalf("-precision %q: want fp64 or int8", *f.precision)
	}

	ds, spec, err := train.LoadData(train.DataOptions{
		Dataset:   *f.dataset,
		Size:      *f.size,
		TrainCSV:  *f.trainCSV,
		TestCSV:   *f.testCSV,
		Threshold: *f.threshold,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *f.bundle != "" && spec == nil {
		log.Fatal("-bundle requires a synthetic dataset (the manifest must record a reproducible generation spec)")
	}

	cfg := core.DefaultWiFiConfig()
	if *f.epochs > 0 {
		cfg.Epochs = *f.epochs
	}
	if *f.tau > 0 {
		cfg.TauFine = *f.tau
		if cfg.TauCoarse <= *f.tau {
			cfg.TauCoarse = *f.tau * 4
		}
	}
	if *f.verbose {
		cfg.Logf = log.Printf
	}

	name := *f.name
	if name == "" {
		name = fmt.Sprintf("%s-%s", *f.dataset, *f.size)
	}
	_, err = train.Run(train.Options{
		Data:            ds,
		Spec:            spec,
		Config:          cfg,
		Precision:       *f.precision,
		CalibMethod:     *f.calibMethod,
		CalibPercentile: *f.calibPercentile,
		CalibSamples:    *f.calibSamples,
		ErrorBudgetPct:  *f.errorBudget,
		SavePath:        *f.save,
		BundleDir:       *f.bundle,
		BundleName:      name,
		Printf: func(format string, args ...any) {
			fmt.Fprintf(os.Stdout, format, args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
}
