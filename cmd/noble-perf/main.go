// Command noble-perf is the scenario-diverse performance harness: it
// boots a real serving engine in-process (behind a real HTTP listener),
// drives the named workload scenarios from internal/benchrig through the
// public client SDK, and writes the results as machine-readable
// BENCH.json (schema: docs/BENCH.md) plus a human table. It is the
// measurement substrate the CI regression gate (ci/perf-gate.sh) runs.
//
// Usage:
//
//	# measure: run the suite and write BENCH.json
//	noble-perf -preset=ci [-models ./models] [-o BENCH.json]
//	           [-scenario REGEXP] [-seed 42] [-runs 0] [-duration 0]
//
//	# gate: compare a fresh run against a committed baseline
//	noble-perf -gate -in BENCH.json -baseline BENCH_baseline.json
//	           [-max-throughput-drop 0.15] [-max-p99-inflation 0.25]
//
// -preset=ci keeps the whole suite short enough for every push;
// -preset=full runs longer passes for stabler numbers when recording a
// baseline. If -models is missing bundles, demo models at -demo-scale
// (default "perf": large enough that the forward pass dominates a
// request, so the fp64-vs-int8 scenarios measure the model tiers rather
// than HTTP overhead) are trained into it first — absolute numbers then
// describe those models, which is exactly what the gate wants: the same
// models on both sides of the comparison. The four bundles (fp64 + int8
// twins) are loaded ONCE — int8 loads re-run the accuracy gate, which
// regenerates datasets and is far too expensive per pass — and every
// pass gets a fresh registry over the same immutable models.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"regexp"
	"syscall"
	"time"

	"noble/internal/benchrig"
	"noble/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noble-perf: ")
	preset := flag.String("preset", "ci", "timing preset: ci (short passes, gate-friendly) or full (longer passes, baseline-quality)")
	modelsDir := flag.String("models", "models", "bundle directory; demo models are trained here if missing")
	demoScale := flag.String("demo-scale", serve.DemoPerf, "demo bundle scale trained into -models when missing: tiny, perf or full")
	out := flag.String("o", "BENCH.json", "output path for the machine-readable report")
	scenarioRe := flag.String("scenario", "", "only run scenarios whose name matches this regexp")
	seed := flag.Int64("seed", 42, "payload generator seed (fixed = identical request stream every run)")
	runs := flag.Int("runs", 0, "override measured passes per scenario (0 = preset value)")
	duration := flag.Duration("duration", 0, "override measured pass duration (0 = preset value)")
	quiet := flag.Bool("quiet", false, "suppress per-pass progress")
	trace := flag.Bool("trace", true, "run with request tracing on (the production default); -trace=false measures the untraced baseline so the two reports bound the tracer's overhead")

	gate := flag.Bool("gate", false, "gate mode: compare -in against -baseline instead of measuring")
	in := flag.String("in", "BENCH.json", "gate mode: the fresh run to judge")
	baseline := flag.String("baseline", "BENCH_baseline.json", "gate mode: the committed baseline")
	maxDrop := flag.Float64("max-throughput-drop", benchrig.DefaultGate().MaxThroughputDrop,
		"gate mode: max fractional throughput drop per scenario")
	maxInfl := flag.Float64("max-p99-inflation", benchrig.DefaultGate().MaxP99Inflation,
		"gate mode: max fractional p99 latency inflation per scenario")
	flag.Parse()

	if *gate {
		runGate(*in, *baseline, *maxDrop, *maxInfl)
		return
	}

	rig, err := benchrig.Preset(*preset)
	if err != nil {
		log.Fatalf("%v", err)
	}
	rig.Seed = *seed
	rig.NoTrace = !*trace
	if *runs > 0 {
		rig.Runs = *runs
	}
	if *duration > 0 {
		rig.PassDuration = *duration
		if rig.MinPassDuration > *duration {
			rig.MinPassDuration = *duration
		}
	}
	if !*quiet {
		rig.Logf = log.Printf
	}

	// Self-provision models: a bare checkout (or CI runner) trains the
	// tiny demo bundles once; later runs reuse them from disk.
	if err := os.MkdirAll(*modelsDir, 0o755); err != nil {
		log.Fatalf("creating models dir: %v", err)
	}
	if err := serve.TrainDemoBundles(*modelsDir, *demoScale, log.Printf); err != nil {
		log.Fatalf("training demo bundles: %v", err)
	}
	// Load every bundle once, up front: an int8 bundle load replays its
	// calibration and re-runs the accuracy gate against a regenerated
	// dataset, which is seconds of work — fine at boot, unacceptable per
	// pass. Passes still get a FRESH registry each (no state leakage);
	// the models themselves are immutable under inference.
	boot := serve.NewRegistry(*modelsDir, log.Printf)
	if _, _, err := boot.Reload(); err != nil {
		log.Fatalf("loading bundles: %v", err)
	}
	if failed := boot.FailedBundles(); len(failed) > 0 {
		log.Fatalf("bundles failed to load: %v", failed)
	}
	var models []*serve.Model
	for _, info := range boot.List() {
		if m, ok := boot.Get(info.Name); ok {
			models = append(models, m)
		}
	}
	rig.NewRegistry = func() (*serve.Registry, error) {
		reg := serve.NewRegistry("", func(string, ...any) {})
		for _, m := range models {
			reg.Add(m)
		}
		return reg, nil
	}

	scenarios := benchrig.Suite()
	if *scenarioRe != "" {
		re, err := regexp.Compile(*scenarioRe)
		if err != nil {
			log.Fatalf("bad -scenario regexp: %v", err)
		}
		var kept []benchrig.Scenario
		for _, sc := range scenarios {
			if re.MatchString(sc.Name) {
				kept = append(kept, sc)
			}
		}
		if len(kept) == 0 {
			log.Fatalf("-scenario %q matches none of the %d scenarios", *scenarioRe, len(scenarios))
		}
		scenarios = kept
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	results, err := rig.RunSuite(ctx, scenarios)
	if err != nil {
		log.Fatalf("%v", err)
	}
	bench := benchrig.NewBench(*preset, *seed, rig.Runs, results)
	// Calibrate AFTER the scenarios (same thermal/load state they saw),
	// so the gate can separate machine drift from code regressions.
	bench.Host.CalibrationMflops = benchrig.Calibrate()
	log.Printf("machine calibration: %.0f MFLOP/s (reference kernel)", bench.Host.CalibrationMflops)
	if err := bench.WriteJSON(*out); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	bench.WriteTable(os.Stdout)
	log.Printf("wrote %s (%d scenarios in %v)", *out, len(results), time.Since(start).Round(time.Second))
}

// runGate loads both reports, applies the thresholds, and exits non-zero
// on any violation.
func runGate(inPath, basePath string, maxDrop, maxInfl float64) {
	cur, err := benchrig.ReadBench(inPath)
	if err != nil {
		log.Fatalf("reading current run: %v", err)
	}
	base, err := benchrig.ReadBench(basePath)
	if err != nil {
		log.Fatalf("reading baseline: %v", err)
	}
	cfg := benchrig.DefaultGate()
	cfg.MaxThroughputDrop = maxDrop
	cfg.MaxP99Inflation = maxInfl
	findings := benchrig.Gate(cur, base, cfg)
	benchrig.WriteGateReport(os.Stdout, cur, base, findings)
	if len(findings) > 0 {
		os.Exit(1)
	}
}
