package noble

import (
	"io"

	"noble/internal/experiments"
)

// Preset selects experiment scale: Small (seconds per experiment, used by
// the benchmarks) or Full (the EXPERIMENTS.md numbers).
type Preset = experiments.Preset

// Experiment presets.
const (
	Small = experiments.Small
	Full  = experiments.Full
)

// Report is a rendered experiment result with paper-vs-measured rows.
type Report = experiments.Report

// Experiment is one registered paper table/figure runner.
type Experiment = experiments.Runner

// Experiments returns every table/figure runner in DESIGN.md §3 order.
func Experiments() []Experiment { return experiments.All() }

// RunAllExperiments executes the whole suite at the preset, streaming each
// report to w.
func RunAllExperiments(p Preset, w io.Writer) error { return experiments.RunAll(p, w) }

// Individual runners (see DESIGN.md §3 for the experiment index).

// RunTable1 reproduces Table I (NObLe accuracies and errors on UJI).
func RunTable1(p Preset) *Report { return experiments.RunTable1(p) }

// RunTable2 reproduces Table II (comparative baselines on UJI).
func RunTable2(p Preset) *Report { return experiments.RunTable2(p) }

// RunIPIN reproduces the §IV-B IPIN2016 comparison.
func RunIPIN(p Preset) *Report { return experiments.RunIPIN(p) }

// RunTable3 reproduces Table III (IMU tracking errors).
func RunTable3(p Preset) *Report { return experiments.RunTable3(p) }

// RunFigure1 reproduces Fig. 1 (ground-truth structure).
func RunFigure1(p Preset) *Report { return experiments.RunFigure1(p) }

// RunFigure4 reproduces Fig. 4 (prediction structure scatters).
func RunFigure4(p Preset) *Report { return experiments.RunFigure4(p) }

// RunFigure5 reproduces Fig. 5 (IMU prediction scatters).
func RunFigure5(p Preset) *Report { return experiments.RunFigure5(p) }

// RunEnergyWiFi reproduces §IV-C (Wi-Fi inference energy).
func RunEnergyWiFi(p Preset) *Report { return experiments.RunEnergyWiFi(p) }

// RunEnergyIMU reproduces §V-D (IMU energy budget and the 27× GPS ratio).
func RunEnergyIMU(p Preset) *Report { return experiments.RunEnergyIMU(p) }

// RunAblationTau sweeps the quantization cell side τ.
func RunAblationTau(p Preset) *Report { return experiments.RunAblationTau(p) }

// RunAblationHeads ablates the multi-head configuration.
func RunAblationHeads(p Preset) *Report { return experiments.RunAblationHeads(p) }

// RunAblationNoise sweeps input noise against neighbor-aware baselines.
func RunAblationNoise(p Preset) *Report { return experiments.RunAblationNoise(p) }

// RunAblationIMUArch ablates the IMU location-module design.
func RunAblationIMUArch(p Preset) *Report { return experiments.RunAblationIMUArch(p) }

// RunOnlineTracking runs the X1 extension: greedy vs map-constrained
// Viterbi trajectory decoding on an unseen walk.
func RunOnlineTracking(p Preset) *Report { return experiments.RunOnlineTracking(p) }

// RunErrorCDF runs the X2 extension: the cumulative error distribution of
// NObLe vs Deep Regression.
func RunErrorCDF(p Preset) *Report { return experiments.RunErrorCDF(p) }
