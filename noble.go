// Package noble is a from-scratch Go reproduction of "Neighbor Oblivious
// Learning (NObLe) for Device Localization and Tracking" (Liu, Chou,
// Shrivastava — DATE 2021, arXiv:2011.14954).
//
// NObLe turns localization — usually posed as coordinate regression — into
// fine-grained classification over a quantized output space: the
// continuous map is cut into small grid cells, cells that contain no
// training data (inaccessible space: courtyards, walls, lawns) are
// discarded, and a multi-head network classifies fingerprints into the
// surviving "neighborhood classes". The penultimate layer then behaves
// like a manifold embedding learned *without* input-space neighborhood
// supervision — the property that names the method.
//
// The package exposes the complete system: synthetic survey substrates
// standing in for the paper's proprietary datasets (UJIIndoorLoc-like
// multi-building Wi-Fi, IPIN2016-like single building, campus IMU walks),
// the NObLe Wi-Fi and IMU models, the paper's baselines (deep regression,
// map projection, Isomap/LLE regression, weighted-kNN fingerprinting), an
// energy model of the paper's Jetson TX2 measurements, evaluation metrics,
// and a harness reproducing every table and figure. See README.md for a
// tour and DESIGN.md for the substitution ledger.
//
// Quickstart:
//
//	ds := noble.SynthIPIN(noble.SmallIPINConfig())
//	model := noble.TrainWiFi(ds, noble.DefaultWiFiConfig())
//	pred := model.Predict(ds.Test[0].Features)
//	fmt.Println(pred.Pos, pred.Building, pred.Floor)
//
// Batched inference amortizes the matmul cost across fingerprints — one
// forward pass for the whole batch (this is what noble-serve's
// micro-batcher uses):
//
//	preds := model.PredictBatch([][]float64{fp1, fp2, fp3})
package noble

import (
	"noble/internal/core"
	"noble/internal/dataset"
	"noble/internal/quantize"
)

// WiFiConfig configures TrainWiFi; see core.WiFiConfig for field docs.
type WiFiConfig = core.WiFiConfig

// WiFiModel is a trained NObLe Wi-Fi localizer.
type WiFiModel = core.WiFiModel

// WiFiPrediction is one decoded Wi-Fi inference result.
type WiFiPrediction = core.WiFiPrediction

// DefaultWiFiConfig returns the paper's Wi-Fi training configuration
// (two 128-unit tanh hidden layers with batch norm, τ=0.4 m fine grid,
// coarse grid, building and floor heads).
func DefaultWiFiConfig() WiFiConfig { return core.DefaultWiFiConfig() }

// TrainWiFi fits NObLe on the dataset's training split.
func TrainWiFi(ds *WiFiDataset, cfg WiFiConfig) *WiFiModel { return core.TrainWiFi(ds, cfg) }

// NewWiFiModel builds the untrained architecture for a dataset — the
// construction is deterministic, so weights written by (*WiFiModel).Save
// can be restored into it with Load.
func NewWiFiModel(ds *WiFiDataset, cfg WiFiConfig) *WiFiModel { return core.NewWiFiModel(ds, cfg) }

// IMUConfig configures TrainIMU; see core.IMUConfig for field docs.
type IMUConfig = core.IMUConfig

// IMUModel is a trained NObLe tracking model (projection → displacement →
// location modules, Fig. 5a).
type IMUModel = core.IMUModel

// IMUPrediction is one decoded tracking result.
type IMUPrediction = core.IMUPrediction

// DefaultIMUConfig returns the paper's IMU training configuration
// (τ=0.4 m).
func DefaultIMUConfig() IMUConfig { return core.DefaultIMUConfig() }

// TrainIMU fits the tracking model on the dataset's training paths.
func TrainIMU(ds *IMUPathDataset, cfg IMUConfig) *IMUModel { return core.TrainIMU(ds, cfg) }

// NewIMUModel builds the untrained tracking architecture for a dataset;
// weights written by (*IMUModel).Save can be restored into it with Load.
func NewIMUModel(ds *IMUPathDataset, cfg IMUConfig) *IMUModel { return core.NewIMUModel(ds, cfg) }

// Grid is a fitted space quantizer (the neighborhood-class codebook).
type Grid = quantize.Grid

// MultiRes couples the fine and coarse quantization grids.
type MultiRes = quantize.MultiRes

// NewGrid fits a quantizer of cell side tau to training positions,
// discarding empty cells.
func NewGrid(tau float64, points []Point) *Grid { return quantize.NewGrid(tau, points) }

// WiFiDataset is a fingerprinting dataset with train/val/test splits.
type WiFiDataset = dataset.WiFi

// WiFiSample is one fingerprint observation.
type WiFiSample = dataset.WiFiSample
